(* Live telemetry registry: counters, gauges, log-linear quantile
   histograms, rolling SLO windows, JSONL/Prometheus export.

   Histogram scheme: a positive value [v] is decomposed with [frexp]
   into mantissa [m] in [0.5, 1) and exponent [e]; the bucket index is
   [e * 2^s + floor ((2m - 1) * 2^s)], i.e. each power of two carries
   [2^s] linear sub-buckets.  The bucket spanning
   [(1 + k/2^s) * 2^(e-1), (1 + (k+1)/2^s) * 2^(e-1)) is represented
   by its midpoint, so the representation error is at most half a
   sub-bucket width relative to the bucket's lower bound: 2^-(s+1).
   Buckets live in a hashtable keyed by index — memory is proportional
   to the number of *occupied* buckets, and two histograms merge by
   adding tables, so per-domain histograms can be combined exactly.

   Locking: one mutex per histogram / SLO window, held for a few array
   and table writes.  Counters and gauges are bare atomics.  The
   registry mutex only guards instrument creation and snapshot
   enumeration, never the record paths. *)

module J = Obs_json

type counter = { c_on : bool Atomic.t; c_v : int Atomic.t }
type gauge = { g_on : bool Atomic.t; g_v : float Atomic.t }

type histogram = {
  h_on : bool Atomic.t;
  h_bits : int;
  h_m : Mutex.t;
  h_buckets : (int, int) Hashtbl.t;
  mutable h_zero : int; (* values <= 0, represented exactly as 0. *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float; (* +inf when empty *)
  mutable h_max : float; (* -inf when empty *)
  mutable h_ex : (float * string) list;
      (* exemplars: most-recent-first (value, trace ref) pairs linking
         observations back to retained flight traces; capped short *)
}

type slo = {
  sl_on : bool Atomic.t;
  sl_m : Mutex.t;
  sl_window : int;
  sl_ok : Bytes.t; (* ring buffers; '\001' = true *)
  sl_met : Bytes.t;
  mutable sl_pos : int;
  mutable sl_seen : int;
  mutable sl_total : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Slo of slo

type registry = {
  r_m : Mutex.t;
  r_on : bool Atomic.t;
  r_tbl : (string, instrument) Hashtbl.t;
}

let create ?(enabled = true) () =
  { r_m = Mutex.create (); r_on = Atomic.make enabled; r_tbl = Hashtbl.create 32 }

(* The registry library code records into when handed nothing: disabled
   by default so the standalone solver pays one atomic load per solve. *)
let default = create ~enabled:false ()

let set_enabled r b = Atomic.set r.r_on b
let is_enabled r = Atomic.get r.r_on

let reset r =
  Mutex.lock r.r_m;
  Hashtbl.reset r.r_tbl;
  Mutex.unlock r.r_m

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Slo _ -> "slo"

(* Find-or-create under the registry lock; a name can hold only one
   kind of instrument for its whole life. *)
let intern r name make select =
  Mutex.lock r.r_m;
  let it =
    match Hashtbl.find_opt r.r_tbl name with
    | Some it -> it
    | None ->
      let it = make () in
      Hashtbl.add r.r_tbl name it;
      it
  in
  Mutex.unlock r.r_m;
  match select it with
  | Some x -> x
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S is a %s, not what was requested" name
         (kind_name it))

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)

let counter r name =
  intern r name
    (fun () -> Counter { c_on = r.r_on; c_v = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c =
  if Atomic.get c.c_on then ignore (Atomic.fetch_and_add c.c_v by)

let counter_value c = Atomic.get c.c_v

let gauge r name =
  intern r name
    (fun () -> Gauge { g_on = r.r_on; g_v = Atomic.make 0. })
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = if Atomic.get g.g_on then Atomic.set g.g_v v
let gauge_value g = Atomic.get g.g_v

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let default_sig_bits = 7

let histogram ?(sig_bits = default_sig_bits) r name =
  if sig_bits < 1 || sig_bits > 20 then
    invalid_arg "Obs.Metrics.histogram: sig_bits must be in [1, 20]";
  intern r name
    (fun () ->
      Histogram
        {
          h_on = r.r_on;
          h_bits = sig_bits;
          h_m = Mutex.create ();
          h_buckets = Hashtbl.create 64;
          h_zero = 0;
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
          h_ex = [];
        })
    (function Histogram h -> Some h | _ -> None)

let relative_error h = Float.ldexp 1. (-(h.h_bits + 1))

let bucket_index bits v =
  let m, e = Float.frexp v in
  (* m in [0.5, 1) => (2m - 1) in [0, 1) => sub in [0, 2^bits) *)
  let sub = int_of_float ((m *. 2. -. 1.) *. Float.ldexp 1. bits) in
  (e lsl bits) + sub

(* Midpoint of bucket [idx]: (1 + (sub + 0.5)/2^bits) * 2^(e-1). *)
let bucket_rep bits idx =
  let e = idx asr bits in
  let sub = idx - (e lsl bits) in
  Float.ldexp
    (1. +. ((float_of_int sub +. 0.5) *. Float.ldexp 1. (-bits)))
    (e - 1)

let observe h v =
  if Atomic.get h.h_on then begin
    Mutex.lock h.h_m;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    (if v <= 0. || not (Float.is_finite v) then h.h_zero <- h.h_zero + 1
     else
       let idx = bucket_index h.h_bits v in
       Hashtbl.replace h.h_buckets idx
         (1 + Option.value ~default:0 (Hashtbl.find_opt h.h_buckets idx)));
    Mutex.unlock h.h_m
  end

(* Walk the occupied buckets in value order (zero bucket first, then
   indices ascending) resolving every requested rank in one pass.
   Ranks must be sorted ascending. *)
let resolve_ranks_locked h ranks =
  let sorted =
    List.sort compare
      (Hashtbl.fold (fun k c acc -> (k, c) :: acc) h.h_buckets [])
  in
  let res = Array.make (List.length ranks) 0. in
  (* [cur] is the bucket whose counts [cum] already includes; the zero
     bucket (represented as [None] -> 0.) seeds the walk. *)
  let rec walk i ranks cum buckets ~cur =
    match ranks with
    | [] -> ()
    | rank :: rest ->
      if cum >= rank then begin
        res.(i) <- (match cur with None -> 0. | Some idx -> bucket_rep h.h_bits idx);
        walk (i + 1) rest cum buckets ~cur
      end
      else (
        match buckets with
        | [] ->
          res.(i) <- (match cur with None -> 0. | Some idx -> bucket_rep h.h_bits idx);
          walk (i + 1) rest cum buckets ~cur
        | (idx, c) :: more -> walk i ranks (cum + c) more ~cur:(Some idx))
  in
  walk 0 ranks h.h_zero sorted ~cur:None;
  res

let clamp_rank h q =
  let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
  max 1 (min h.h_count r)

let quantile h q =
  Mutex.lock h.h_m;
  let r =
    if h.h_count = 0 then 0.
    else (resolve_ranks_locked h [ clamp_rank h q ]).(0)
  in
  Mutex.unlock h.h_m;
  r

type hstats = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

let hstats h =
  Mutex.lock h.h_m;
  let st =
    if h.h_count = 0 then
      { count = 0; sum = 0.; vmin = 0.; vmax = 0.; mean = 0.; p50 = 0.;
        p90 = 0.; p95 = 0.; p99 = 0.; p999 = 0. }
    else begin
      let qs = [ 0.5; 0.9; 0.95; 0.99; 0.999 ] in
      let ranks = List.sort_uniq compare (List.map (clamp_rank h) qs) in
      let vals = resolve_ranks_locked h ranks in
      let at q =
        let rank = clamp_rank h q in
        let rec find i = function
          | [] -> 0.
          | r :: _ when r = rank -> vals.(i)
          | _ :: rest -> find (i + 1) rest
        in
        find 0 ranks
      in
      {
        count = h.h_count;
        sum = h.h_sum;
        vmin = h.h_min;
        vmax = h.h_max;
        mean = h.h_sum /. float_of_int h.h_count;
        p50 = at 0.5;
        p90 = at 0.9;
        p95 = at 0.95;
        p99 = at 0.99;
        p999 = at 0.999;
      }
    end
  in
  Mutex.unlock h.h_m;
  st

(* ------------------------------------------------------------------ *)
(* Exemplars: a short trail of (value, trace ref) pairs so a histogram
   snapshot can answer "show me a trace behind this distribution" —
   the flight recorder links each retained request's dump in here.
   Bounded and newest-first; never touched on the observe path. *)

let max_exemplars = 8

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let exemplar h v trace =
  if Atomic.get h.h_on then begin
    Mutex.lock h.h_m;
    h.h_ex <- (v, trace) :: take (max_exemplars - 1) h.h_ex;
    Mutex.unlock h.h_m
  end

let exemplars h =
  Mutex.lock h.h_m;
  let ex = h.h_ex in
  Mutex.unlock h.h_m;
  ex

let merge_into ~into src =
  if into.h_bits <> src.h_bits then
    invalid_arg "Obs.Metrics.merge_into: sig_bits differ";
  (* Copy the source out under its own lock, then add under the
     destination's — never hold both (concurrent opposite-direction
     merges would deadlock). *)
  Mutex.lock src.h_m;
  let buckets = Hashtbl.fold (fun k c acc -> (k, c) :: acc) src.h_buckets [] in
  let zero = src.h_zero and count = src.h_count and sum = src.h_sum in
  let mn = src.h_min and mx = src.h_max in
  let ex = src.h_ex in
  Mutex.unlock src.h_m;
  Mutex.lock into.h_m;
  List.iter
    (fun (k, c) ->
      Hashtbl.replace into.h_buckets k
        (c + Option.value ~default:0 (Hashtbl.find_opt into.h_buckets k)))
    buckets;
  into.h_zero <- into.h_zero + zero;
  into.h_count <- into.h_count + count;
  into.h_sum <- into.h_sum +. sum;
  if mn < into.h_min then into.h_min <- mn;
  if mx > into.h_max then into.h_max <- mx;
  into.h_ex <- take max_exemplars (into.h_ex @ ex);
  Mutex.unlock into.h_m

(* ------------------------------------------------------------------ *)
(* Rolling-window SLO tracker                                          *)

let slo ?(window = 512) r name =
  if window < 1 then invalid_arg "Obs.Metrics.slo: window must be >= 1";
  intern r name
    (fun () ->
      Slo
        {
          sl_on = r.r_on;
          sl_m = Mutex.create ();
          sl_window = window;
          sl_ok = Bytes.make window '\000';
          sl_met = Bytes.make window '\000';
          sl_pos = 0;
          sl_seen = 0;
          sl_total = 0;
        })
    (function Slo s -> Some s | _ -> None)

let slo_record s ~ok ~deadline_met =
  if Atomic.get s.sl_on then begin
    Mutex.lock s.sl_m;
    Bytes.unsafe_set s.sl_ok s.sl_pos (if ok then '\001' else '\000');
    Bytes.unsafe_set s.sl_met s.sl_pos (if deadline_met then '\001' else '\000');
    s.sl_pos <- (s.sl_pos + 1) mod s.sl_window;
    if s.sl_seen < s.sl_window then s.sl_seen <- s.sl_seen + 1;
    s.sl_total <- s.sl_total + 1;
    Mutex.unlock s.sl_m
  end

type slo_stats = {
  window : int;
  seen : int;
  total : int;
  ok : int;
  met : int;
  error_rate : float;
  deadline_hit_rate : float;
}

let slo_stats s =
  Mutex.lock s.sl_m;
  let count b =
    let n = ref 0 in
    for i = 0 to s.sl_seen - 1 do
      if Bytes.unsafe_get b i = '\001' then Stdlib.incr n
    done;
    !n
  in
  let ok = count s.sl_ok and met = count s.sl_met in
  let st =
    {
      window = s.sl_window;
      seen = s.sl_seen;
      total = s.sl_total;
      ok;
      met;
      error_rate =
        (if s.sl_seen = 0 then 0.
         else 1. -. (float_of_int ok /. float_of_int s.sl_seen));
      deadline_hit_rate =
        (if s.sl_seen = 0 then 1.
         else float_of_int met /. float_of_int s.sl_seen);
    }
  in
  Mutex.unlock s.sl_m;
  st

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let items_sorted r =
  Mutex.lock r.r_m;
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.r_tbl [] in
  Mutex.unlock r.r_m;
  List.sort (fun (a, _) (b, _) -> compare (a : string) b) items

(* float_str serializes non-finite floats as 0; feed it finite numbers
   only so snapshots round-trip through the parser. *)
let fin f = if Float.is_finite f then f else 0.

let hstats_json h =
  let st = hstats h in
  let base =
    [
      ("count", J.Num (float_of_int st.count));
      ("sum", J.Num (fin st.sum));
      ("min", J.Num (fin st.vmin));
      ("max", J.Num (fin st.vmax));
      ("mean", J.Num (fin st.mean));
      ("p50", J.Num (fin st.p50));
      ("p90", J.Num (fin st.p90));
      ("p95", J.Num (fin st.p95));
      ("p99", J.Num (fin st.p99));
      ("p999", J.Num (fin st.p999));
      ("rel_err", J.Num (relative_error h));
    ]
  in
  (* exemplars only when present, so snapshots without a flight
     recorder are byte-compatible with pre-exemplar readers *)
  match exemplars h with
  | [] -> J.Obj base
  | ex ->
    J.Obj
      (base
      @ [
          ( "exemplars",
            J.Arr
              (List.map
                 (fun (v, tr) ->
                   J.Obj [ ("value", J.Num (fin v)); ("trace", J.Str tr) ])
                 ex) );
        ])

let slo_json s =
  let st = slo_stats s in
  J.Obj
    [
      ("window", J.Num (float_of_int st.window));
      ("seen", J.Num (float_of_int st.seen));
      ("total", J.Num (float_of_int st.total));
      ("ok", J.Num (float_of_int st.ok));
      ("deadline_met", J.Num (float_of_int st.met));
      ("error_rate", J.Num (fin st.error_rate));
      ("deadline_hit_rate", J.Num (fin st.deadline_hit_rate));
    ]

let snapshot_json ?ts r =
  let ts = match ts with Some t -> t | None -> Unix.gettimeofday () in
  let items = items_sorted r in
  let section f =
    List.filter_map (fun (name, it) -> Option.map (fun v -> (name, v)) (f it)) items
  in
  J.Obj
    [
      ("ts_unix", J.Num (fin ts));
      ( "counters",
        J.Obj
          (section (function
            | Counter c -> Some (J.Num (float_of_int (counter_value c)))
            | _ -> None)) );
      ( "gauges",
        J.Obj
          (section (function
            | Gauge g -> Some (J.Num (fin (gauge_value g)))
            | _ -> None)) );
      ( "histograms",
        J.Obj
          (section (function Histogram h -> Some (hstats_json h) | _ -> None)) );
      ("slo", J.Obj (section (function Slo s -> Some (slo_json s) | _ -> None)));
    ]

(* Prometheus text exposition format. *)
let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let prometheus r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, it) ->
      let n = sanitize name in
      match it with
      | Counter c ->
        line "# TYPE %s counter" n;
        line "%s %d" n (counter_value c)
      | Gauge g ->
        line "# TYPE %s gauge" n;
        line "%s %s" n (J.float_str (fin (gauge_value g)))
      | Histogram h ->
        let st = hstats h in
        line "# TYPE %s summary" n;
        List.iter
          (fun (q, v) -> line "%s{quantile=\"%s\"} %s" n q (J.float_str (fin v)))
          [ ("0.5", st.p50); ("0.9", st.p90); ("0.95", st.p95);
            ("0.99", st.p99); ("0.999", st.p999) ];
        line "%s_sum %s" n (J.float_str (fin st.sum));
        line "%s_count %d" n st.count;
        line "%s_min %s" n (J.float_str (fin st.vmin));
        line "%s_max %s" n (J.float_str (fin st.vmax))
      | Slo s ->
        let st = slo_stats s in
        line "# TYPE %s_error_rate gauge" n;
        line "%s_error_rate %s" n (J.float_str (fin st.error_rate));
        line "# TYPE %s_deadline_hit_rate gauge" n;
        line "%s_deadline_hit_rate %s" n (J.float_str (fin st.deadline_hit_rate)))
    (items_sorted r);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Periodic exporter                                                   *)

type exporter = {
  e_stop : bool Atomic.t;
  e_dom : unit Domain.t;
  e_m : Mutex.t;
  mutable e_stopped : bool;
}

let exporter_start ?(interval_ms = 1000.) ?prom_path ~path reg =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let flush_snapshot () =
    output_string oc (J.to_string (snapshot_json reg));
    output_char oc '\n';
    flush oc;
    Option.iter
      (fun p ->
        let tmp = p ^ ".tmp" in
        Out_channel.with_open_bin tmp (fun poc ->
            Out_channel.output_string poc (prometheus reg));
        Sys.rename tmp p)
      prom_path
  in
  let stop = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        let interval = Float.max 10. interval_ms /. 1000. in
        let last = ref (Unix.gettimeofday ()) in
        while not (Atomic.get stop) do
          (* sleep in short slices so exporter_stop is prompt *)
          Unix.sleepf 0.02;
          if
            (not (Atomic.get stop))
            && Unix.gettimeofday () -. !last >= interval
          then begin
            last := Unix.gettimeofday ();
            flush_snapshot ()
          end
        done;
        (* final snapshot: even a session shorter than one interval
           leaves a complete snapshot behind *)
        flush_snapshot ();
        close_out oc)
  in
  { e_stop = stop; e_dom = dom; e_m = Mutex.create (); e_stopped = false }

let exporter_stop e =
  Mutex.lock e.e_m;
  let first = not e.e_stopped in
  e.e_stopped <- true;
  Mutex.unlock e.e_m;
  if first then begin
    Atomic.set e.e_stop true;
    Domain.join e.e_dom
  end
