(* Tail-based flight recorder.

   Head sampling ([Obs.with_suppressed], `--trace-sample`) decides
   *before* a request runs whether its trace is kept — so the traces
   that survive are almost never the ones behind an incident.  The
   flight recorder inverts that: every event is recorded cheaply into a
   preallocated per-track ring buffer (no serialization, no I/O, one
   short lock), and the *completion* path decides what to do with the
   ring — dump it as a self-contained JSONL black box (an error, a
   wedge, a tail-latency outlier), or reset it without ever having
   serialized a byte.

   Rings are keyed by event [tid] (the service runs one request per
   worker track at a time, tid = 1000 + slot), each a fixed-capacity
   overwrite-oldest array.  A dump can therefore cut a request
   mid-span: readers ([Obs.Analyze], [Obs.Check ~lenient]) tolerate
   unmatched ends and unclosed spans by construction.

   Concurrency: [record] is called from the Obs dispatch path (already
   serialized by the global sink mutex), but [retain] / [drop] /
   [dump_all] arrive from whichever domain completes the request — the
   watchdog can dump a wedged worker's ring while the wedged domain is
   still emitting into it — so the recorder carries its own mutex.
   File writes happen outside the lock, on a snapshot.

   Dump format: line 1 is a metadata object (marked ["flight"], with
   the request id, retention reason and whatever the caller adds —
   status, chaos site ids, solver stats, config); every following line
   is one event in the Jsonl sink shape. *)

module E = Obs_event
module J = Obs_json

type ring = {
  buf : E.event array;
  mutable len : int;    (* live events, <= capacity *)
  mutable pos : int;    (* next write index *)
  mutable total : int;  (* recorded since last reset; total - len overflowed *)
}

type stats = { kept : int; dropped : int; dumped : int }

type t = {
  m : Mutex.t;
  capacity : int;
  dir : string option;
  rings : (int, ring) Hashtbl.t;
  mutable n_kept : int;
  mutable n_dropped : int;
  mutable n_dumped : int;
  mutable n_seq : int;  (* dump-file uniquifier *)
}

let hole =
  { E.name = ""; cat = ""; ts_us = 0.; tid = 0; ph = E.Instant; args = [] }

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(capacity = 4096) ?dir () =
  Option.iter mkdir_p dir;
  {
    m = Mutex.create ();
    capacity = max 1 capacity;
    dir;
    rings = Hashtbl.create 8;
    n_kept = 0;
    n_dropped = 0;
    n_dumped = 0;
    n_seq = 0;
  }

let record t (ev : E.event) =
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.rings ev.E.tid with
    | Some r -> r
    | None ->
      let r = { buf = Array.make t.capacity hole; len = 0; pos = 0; total = 0 } in
      Hashtbl.add t.rings ev.E.tid r;
      r
  in
  r.buf.(r.pos) <- ev;
  r.pos <- (r.pos + 1) mod t.capacity;
  if r.len < t.capacity then r.len <- r.len + 1;
  r.total <- r.total + 1;
  Mutex.unlock t.m

let reset r =
  r.len <- 0;
  r.pos <- 0;
  r.total <- 0

let start t ~tid =
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.rings tid with Some r -> reset r | None -> ());
  Mutex.unlock t.m

let drop t ~tid =
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.rings tid with Some r -> reset r | None -> ());
  t.n_dropped <- t.n_dropped + 1;
  Mutex.unlock t.m

(* Oldest-to-newest snapshot; caller holds the lock. *)
let snapshot_locked t r =
  let first = (r.pos - r.len + t.capacity) mod t.capacity in
  List.init r.len (fun i -> r.buf.((first + i) mod t.capacity))

let sanitize s =
  let s = if String.length s > 48 then String.sub s 0 48 else s in
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let write_dump t ~seq ~reason ~id ~meta ~overflow events =
  match t.dir with
  | None -> None
  | Some dir ->
    let path =
      Filename.concat dir
        (Printf.sprintf "flight-%04d-%s-%s.jsonl" seq (sanitize id)
           (sanitize reason))
    in
    let meta_line =
      J.to_string
        (J.Obj
           (("flight", J.Bool true)
           :: ("id", J.Str id)
           :: ("reason", J.Str reason)
           :: ("ts_unix", J.Num (Unix.gettimeofday ()))
           :: ("events", J.Num (float_of_int (List.length events)))
           :: ("overflow", J.Num (float_of_int overflow))
           :: meta))
    in
    (try
       Out_channel.with_open_bin path (fun oc ->
           Out_channel.output_string oc meta_line;
           Out_channel.output_char oc '\n';
           List.iter
             (fun ev ->
               Out_channel.output_string oc (E.jsonl_line ev);
               Out_channel.output_char oc '\n')
             events);
       Mutex.lock t.m;
       t.n_dumped <- t.n_dumped + 1;
       Mutex.unlock t.m;
       Some path
     with Sys_error _ -> None)

let retain t ~tid ~reason ~id ~meta =
  Mutex.lock t.m;
  let events, overflow =
    match Hashtbl.find_opt t.rings tid with
    | Some r ->
      let evs = snapshot_locked t r in
      let ov = r.total - r.len in
      reset r;
      (evs, ov)
    | None -> ([], 0)
  in
  t.n_kept <- t.n_kept + 1;
  let seq = t.n_seq in
  t.n_seq <- seq + 1;
  Mutex.unlock t.m;
  write_dump t ~seq ~reason ~id ~meta ~overflow events

(* One black box over every live ring — the daemon-fatal path, where
   no single request can be blamed.  Rings are left intact (the caller
   is about to die anyway). *)
let dump_all t ~reason ~meta =
  Mutex.lock t.m;
  let events =
    Hashtbl.fold (fun _ r acc -> snapshot_locked t r @ acc) t.rings []
  in
  let events =
    List.sort (fun a b -> compare a.E.ts_us b.E.ts_us) events
  in
  let seq = t.n_seq in
  t.n_seq <- seq + 1;
  t.n_kept <- t.n_kept + 1;
  Mutex.unlock t.m;
  write_dump t ~seq ~reason ~id:"daemon" ~meta ~overflow:0 events

let stats t =
  Mutex.lock t.m;
  let s = { kept = t.n_kept; dropped = t.n_dropped; dumped = t.n_dumped } in
  Mutex.unlock t.m;
  s

(* ------------------------------------------------------------------ *)
(* Read side: load dumps back for `eitc postmortem`.                   *)

type dump = {
  d_path : string;
  d_meta : (string * J.t) list;
  d_events : J.t list;
  d_skipped : int;  (* unparseable event lines (e.g. cut by a crash) *)
}

let load_dump path =
  match In_channel.with_open_bin path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | [] -> Error (path ^ ": empty file")
  | first :: rest -> (
    match J.parse first with
    | Ok (J.Obj kvs) when List.mem_assoc "flight" kvs ->
      (* A crash mid-write can truncate the last event line; skip what
         does not parse instead of refusing the whole black box. *)
      let skipped = ref 0 in
      let events =
        List.filter_map
          (fun line ->
            if String.trim line = "" then None
            else
              match J.parse line with
              | Ok (J.Obj _ as j) -> Some j
              | Ok _ | Error _ ->
                Stdlib.incr skipped;
                None)
          rest
      in
      Ok { d_path = path; d_meta = kvs; d_events = events; d_skipped = !skipped }
    | Ok _ -> Error (path ^ ": not a flight dump (first line lacks \"flight\")")
    | Error e -> Error (path ^ ": " ^ e))

let dump_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n ->
           String.length n > 7
           && String.sub n 0 7 = "flight-"
           && Filename.check_suffix n ".jsonl")
    |> List.sort compare
    |> List.map (Filename.concat dir)

(* Rebuild a Chrome-shaped trace value [Obs.Analyze.of_json] accepts;
   the metadata line (minus the marker) becomes [otherData], so
   reports are headed by request id / reason / status. *)
let trace_of_dump d =
  let other = List.filter (fun (k, _) -> k <> "flight") d.d_meta in
  J.Obj [ ("traceEvents", J.Arr d.d_events); ("otherData", J.Obj other) ]
