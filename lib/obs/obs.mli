(** Unified tracing & metrics layer (zero external dependencies).

    The solver, scheduler and simulator emit structured {!event}s;
    pluggable sinks ({!Chrome}, {!Jsonl}, {!Agg}) consume them.  With no
    sink attached every helper is a near-free branch: {!enabled} is one
    atomic load and nothing is allocated (see [test/t_obs.ml], which
    asserts zero minor-heap allocation on the disabled path).

    Events may be emitted concurrently from several OCaml 5 domains
    (portfolio workers); dispatch is serialized by a global mutex, and
    the [tid] field keeps per-worker tracks apart.

    Hot call sites must guard argument construction themselves:

    {[
      if Obs.enabled () then
        Obs.instant ~cat:"search" ~tid ~args:[ ("var", Obs.S name) ] "branch"
    ]} *)

type value = I of int | F of float | S of string | B of bool

type ph =
  | Begin      (** span opening (Chrome ["B"]) *)
  | End        (** span closing (Chrome ["E"]) *)
  | Instant    (** point event (Chrome ["i"]) *)
  | Counter    (** gauge sample; args are the series (Chrome ["C"]) *)
  | Complete of float  (** self-contained span with duration in us (Chrome ["X"]) *)

type event = {
  name : string;
  cat : string;   (** category: "sched", "search", "store", "machine", ... *)
  ts_us : float;  (** microseconds since the trace epoch (first attach) *)
  tid : int;      (** worker id / machine unit track *)
  ph : ph;
  args : (string * value) list;
}

type sink

val make_sink : ?close:(unit -> unit) -> (event -> unit) -> sink
(** A custom sink; [close] runs when the sink is detached. *)

(** {1 Sink registry} *)

type handle

val attach : sink -> handle
(** Register a sink.  The first attach (re)sets the trace epoch. *)

val detach : handle -> unit
(** Unregister and close.  Unknown handles are ignored. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [attach], run, [detach] (exception-safe). *)

val enabled : unit -> bool
(** Whether at least one sink is attached — the hot-path guard. *)

val now_us : unit -> float
(** Microseconds since the trace epoch. *)

(** {1 Emission} *)

val emit : event -> unit
(** Dispatch to every attached sink (under the global mutex).  Callers
    normally use the helpers below, which skip construction when no
    sink is attached. *)

val span_begin : ?cat:string -> ?tid:int -> ?args:(string * value) list -> string -> unit
val span_end : ?cat:string -> ?tid:int -> ?args:(string * value) list -> string -> unit

val span :
  ?cat:string -> ?tid:int -> ?args:(string * value) list ->
  string -> (unit -> 'a) -> 'a
(** Wrap a computation in a Begin/End pair; the span is closed (without
    [args]) even when the computation raises. *)

val instant : ?cat:string -> ?tid:int -> ?args:(string * value) list -> string -> unit

val counter : ?cat:string -> ?tid:int -> ?ts_us:float -> string -> (string * value) list -> unit
(** Gauge sample; [ts_us] overrides the wall clock (the simulator uses
    cycle numbers as timestamps). *)

val complete :
  ?cat:string -> ?tid:int -> ?args:(string * value) list ->
  ts_us:float -> dur_us:float -> string -> unit

val profile_row :
  ?tid:int -> name:string -> runs:int -> wakes:int -> prunes:int ->
  time_ms:float -> unit -> unit
(** One per-propagator profile row (cat ["propagator"]); {!Agg} merges
    rows with the same name across workers. *)

val cat_propagator : string

(** {1 JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  val parse_file : string -> (t, string) result
  val member : string -> t -> t option
  val to_string : t -> string
  val escape : string -> string
  val float_str : float -> string
end

module Check : sig
  val trace_json : Json.t -> (int, string) result
  (** Structural validation of a Chrome trace: every event an object
      with string [name]/[ph], Begin/End pairs LIFO-nested per
      [(pid, tid)] with non-decreasing timestamps, no span left open,
      complete events carrying a non-negative [dur].  Returns the event
      count. *)

  val trace_file : string -> (int, string) result
end

(** {1 Sinks} *)

module Chrome : sig
  val sink : path:string -> sink
  (** Buffers events; on detach writes a [{"traceEvents": [...]}] file
      loadable in [about://tracing] / Perfetto.  Solver events live on
      pid 1 (wall-clock us), machine events on pid 2 (1 us = 1 cycle). *)
end

module Jsonl : sig
  val sink : path:string -> sink
  (** Streams one JSON object per line. *)
end

module Agg : sig
  (** In-memory aggregation: instants counted by name, counter series
      (last and max), span statistics, merged propagator profiles. *)

  type t

  val create : unit -> t
  val sink : t -> sink

  type span_stat = { s_count : int; s_total_us : float }

  type prow = {
    p_runs : int;
    p_wakes : int;
    p_prunes : int;
    p_time_ms : float;
    p_workers : int;  (** number of per-worker rows merged in *)
  }

  val counts : t -> (string * int) list
  (** Instant tallies, most frequent first. *)

  val gauges : t -> (string * (float * float)) list
  (** Counter series: key -> (last, max), sorted by key. *)

  val spans : t -> (string * span_stat) list
  (** Span statistics, largest total first. *)

  val profiles : t -> (string * prow) list
  (** Per-propagator profiles, most time (then most runs) first. *)
end
