(** Unified tracing & metrics layer (zero external dependencies).

    The solver, scheduler and simulator emit structured {!event}s;
    pluggable sinks ({!Chrome}, {!Jsonl}, {!Agg}) consume them.  With no
    sink attached every helper is a near-free branch: {!enabled} is one
    atomic load and nothing is allocated (see [test/t_obs.ml], which
    asserts zero minor-heap allocation on the disabled path).

    Events may be emitted concurrently from several OCaml 5 domains
    (portfolio workers); dispatch is serialized by a global mutex, and
    the [tid] field keeps per-worker tracks apart.

    Hot call sites must guard argument construction themselves:

    {[
      if Obs.enabled () then
        Obs.instant ~cat:"search" ~tid ~args:[ ("var", Obs.S name) ] "branch"
    ]} *)

type value = Obs_event.value = I of int | F of float | S of string | B of bool

type ph = Obs_event.ph =
  | Begin      (** span opening (Chrome ["B"]) *)
  | End        (** span closing (Chrome ["E"]) *)
  | Instant    (** point event (Chrome ["i"]) *)
  | Counter    (** gauge sample; args are the series (Chrome ["C"]) *)
  | Complete of float  (** self-contained span with duration in us (Chrome ["X"]) *)
  | Meta       (** track metadata — thread/process names (Chrome ["M"]) *)

type event = Obs_event.event = {
  name : string;
  cat : string;   (** category: "sched", "search", "store", "machine", ... *)
  ts_us : float;  (** microseconds since the trace epoch (first attach) *)
  tid : int;      (** worker id / machine unit track *)
  ph : ph;
  args : (string * value) list;
}

type sink

val make_sink : ?close:(unit -> unit) -> (event -> unit) -> sink
(** A custom sink; [close] runs when the sink is detached. *)

(** {1 Sink registry} *)

type handle

val attach : sink -> handle
(** Register a sink.  The first attach (re)sets the trace epoch. *)

val detach : handle -> unit
(** Unregister and close.  Unknown handles are ignored. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [attach], run, [detach] (exception-safe). *)

val enabled : unit -> bool
(** Whether at least one sink is attached {e and} the calling domain is
    not suppressed — the hot-path guard.  With no sink attached this is
    a single atomic load. *)

val with_suppressed : (unit -> 'a) -> 'a
(** Run [f] with this domain's emission suppressed: every helper above
    becomes a no-op on this domain while sinks stay attached for
    everyone else.  Nestable and exception-safe.  This is the
    head-sampling primitive: the service traces 1-in-N requests by
    running the rest under suppression.  Note: domains spawned inside
    [f] (a portfolio solve) do {e not} inherit the suppression. *)

val now_us : unit -> float
(** Microseconds since the trace epoch. *)

(** {1 Emission} *)

val emit : event -> unit
(** Dispatch to every attached sink (under the global mutex).  Callers
    normally use the helpers below, which skip construction when no
    sink is attached. *)

val span_begin : ?cat:string -> ?tid:int -> ?args:(string * value) list -> string -> unit
val span_end : ?cat:string -> ?tid:int -> ?args:(string * value) list -> string -> unit

val span :
  ?cat:string -> ?tid:int -> ?args:(string * value) list ->
  string -> (unit -> 'a) -> 'a
(** Wrap a computation in a Begin/End pair; the span is closed (without
    [args]) even when the computation raises. *)

val instant : ?cat:string -> ?tid:int -> ?args:(string * value) list -> string -> unit

val counter : ?cat:string -> ?tid:int -> ?ts_us:float -> string -> (string * value) list -> unit
(** Gauge sample; [ts_us] overrides the wall clock (the simulator uses
    cycle numbers as timestamps). *)

val complete :
  ?cat:string -> ?tid:int -> ?args:(string * value) list ->
  ts_us:float -> dur_us:float -> string -> unit

val thread_name : ?cat:string -> ?tid:int -> string -> unit
(** Label the (pid, tid) track this is emitted on (pid derives from
    [cat] as usual).  The Chrome sink writes a ph:["M"] metadata record
    so Perfetto shows e.g. "worker-2"; {!Analyze} reads it back to
    label reports. *)

val profile_row :
  ?tid:int -> ?entails:int -> name:string -> runs:int -> wakes:int ->
  prunes:int -> time_ms:float -> unit -> unit
(** One per-propagator profile row (cat ["propagator"]); {!Agg} merges
    rows with the same name across workers.  [entails] counts entailment
    reports (default 0). *)

val cat_propagator : string

(** {1 JSON} *)

module Json : sig
  type t = Obs_json.t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  val parse_file : string -> (t, string) result
  val member : string -> t -> t option
  val to_string : t -> string
  val escape : string -> string
  val float_str : float -> string
end

module Check : sig
  val trace_json : ?lenient:bool -> Json.t -> (int, string) result
  (** Structural validation of a Chrome trace: every event an object
      with string [name]/[ph], Begin/End pairs LIFO-nested per
      [(pid, tid)] with non-decreasing timestamps, no span left open,
      complete events carrying a non-negative [dur].  Returns the event
      count.

      [lenient] (default [false]) tolerates the two defects of a
      {e truncated} trace — ends whose begin fell off the front (a
      flight-recorder ring overwrote it) and spans still open at the
      cut — while misnesting, backwards timestamps and malformed
      events stay errors.  Flight dumps and other ring-cut traces
      validate under [~lenient:true]. *)

  val trace_file : ?lenient:bool -> string -> (int, string) result
  (** Validate a trace file: either a single Chrome-JSON document
      (from [--trace]) or JSONL (a flight-recorder black box — its
      ["flight": true] metadata first line is skipped). *)
end

(** {1 Sinks} *)

module Chrome : sig
  val sink : ?other_data:(string * value) list -> path:string -> unit -> sink
  (** Buffers events; on detach writes a [{"traceEvents": [...]}] file
      loadable in [about://tracing] / Perfetto.  Solver events live on
      pid 1 (wall-clock us), machine events on pid 2 (1 us = 1 cycle).
      Process/thread-name metadata for the static tracks is emitted up
      front; [other_data] fields (kernel, slots, mode, ...) land in the
      file's top-level ["otherData"] object together with the
      wall-clock start, and {!Analyze} reads them back to label
      reports. *)
end

module Jsonl : sig
  val sink : path:string -> sink
  (** Streams one JSON object per line. *)
end

module Agg : sig
  (** In-memory aggregation: instants counted by name, counter series
      (last and max), span statistics, merged propagator profiles. *)

  type t

  val create : unit -> t
  val sink : t -> sink

  type span_stat = { s_count : int; s_total_us : float }

  type prow = {
    p_runs : int;
    p_wakes : int;
    p_prunes : int;
    p_entails : int;
    p_time_ms : float;
    p_workers : int;  (** number of per-worker rows merged in *)
  }

  val counts : t -> (string * int) list
  (** Instant tallies, most frequent first. *)

  val gauges : t -> (string * (float * float)) list
  (** Counter series: key -> (last, max), sorted by key. *)

  val spans : t -> (string * span_stat) list
  (** Span statistics, largest total first. *)

  val profiles : t -> (string * prow) list
  (** Per-propagator profiles, most time (then most runs) first. *)
end

(** {1 Trace analytics}

    The read side: rebuild the span forest from a Chrome trace,
    compute inclusive/exclusive times, fold it into FlameGraph
    collapsed-stack lines, extract the critical path, derive machine
    utilization from the pid-2 cycle timeline, and structurally diff
    two traces (the engine behind [eitc trace-report] /
    [eitc trace-diff]). *)

module Analyze : sig
  type node = {
    n_name : string;
    n_cat : string;
    n_ts : float;    (** start: us on pid 1, cycles on pid 2 *)
    n_incl : float;  (** inclusive duration *)
    n_excl : float;  (** exclusive = inclusive − Σ children, clamped ≥ 0 *)
    n_children : node list;  (** in emission order *)
  }

  type track = {
    tr_pid : int;
    tr_tid : int;
    tr_label : string;  (** from process/thread-name metadata, e.g. "solver/main" *)
    tr_roots : node list;
  }

  type profile = {
    a_runs : int;
    a_wakes : int;
    a_prunes : int;
    a_time_ms : float;
  }

  type machine = {
    mc_cycles : int;            (** timeline horizon in cycles *)
    mc_busy_lane_cycles : int;  (** Σ over cycles of busy lanes *)
    mc_peak_lanes : int;
    mc_avg_lanes : float;
    mc_lane_util : float;       (** busy-lane-cycles / (cycles × peak), % *)
    mc_unit_busy : (string * int) list;  (** functional unit → busy cycles *)
    mc_read_hist : (int * int) list;     (** reads/cycle → #cycles *)
    mc_write_hist : (int * int) list;
    mc_peak_reads : int;
    mc_peak_accesses : int;     (** max reads+writes in any one cycle *)
  }

  type summary = {
    sm_other : (string * Json.t) list;  (** the trace's [otherData] labels *)
    sm_tracks : track list;             (** sorted by (pid, tid) *)
    sm_span_stats : ((string * string) * (int * float)) list;
        (** (track label, span name) → (count, total inclusive us),
            all nesting depths, largest total first *)
    sm_profiles : (string * profile) list;  (** propagator rows, merged *)
    sm_counts : (string * int) list;        (** instant tallies *)
    sm_machine : machine option;  (** [None] when the trace has no pid-2 timeline *)
    sm_events : int;
  }

  val of_json : Json.t -> (summary, string) result
  (** Lenient where {!Check.trace_json} is strict: unmatched ends are
      dropped and spans still open at the end of the trace are closed
      at their track's last timestamp. *)

  val of_file : string -> (summary, string) result

  val label : summary -> string
  (** "kernel=qrd mode=sequential slots=64" from [otherData]; [""] when
      the trace carries no labels. *)

  val folded : summary -> (string * float) list
  (** Collapsed stacks: ["track;span;child" → exclusive us], merged
      over identical stacks, first-seen order.  Semicolons inside frame
      names are replaced by commas. *)

  val write_folded : string -> summary -> unit
  (** One ["a;b;c <int>"] line per stack — flamegraph.pl / speedscope
      input.  Values are rounded exclusive us, clamped ≥ 0. *)

  val critical_path : summary -> node list
  (** Heaviest-child chain from the largest sched-phase root on the
      solver's main track (pid 1, tid 0); [[]] if that track is absent. *)

  val root_inclusive : summary -> float option
  (** Inclusive time of the critical path's root, us. *)

  (** {2 Trace diff} *)

  type span_delta = {
    sd_key : string * string;  (** (track label, span name) *)
    sd_count_b : int;
    sd_count_a : int;
    sd_total_b : float;  (** us *)
    sd_total_a : float;
  }

  type profile_delta = {
    pd_name : string;
    pd_before : profile option;
    pd_after : profile option;
  }

  type count_delta = { cd_name : string; cd_before : int; cd_after : int }

  type diff = {
    df_label_b : string;
    df_label_a : string;
    df_spans : span_delta list;        (** matched by (track, name) *)
    df_new : (string * string) list;   (** spans present only in [after] *)
    df_gone : (string * string) list;  (** spans present only in [before] *)
    df_profiles : profile_delta list;  (** union of propagator names *)
    df_counts : count_delta list;      (** union of instant names *)
  }

  val diff : summary -> summary -> diff

  val regressions : ?threshold:float -> diff -> string list
  (** Watched-metric regressions past [threshold] percent (default 10):
      total and per-propagator run counts, and the search [branch] /
      [fail] tallies — the deterministic work counters.  Wall-clock
      time never gates (noisy in CI).  A trace diffed against itself
      yields [[]]. *)

  (** {2 Printing} *)

  val pp_report : ?utilization:bool -> Format.formatter -> summary -> unit
  val pp_utilization : Format.formatter -> machine -> unit
  val pp_diff : Format.formatter -> diff -> unit
end

(** {1 Live metrics}

    The always-on side: counters, gauges, quantile histograms and SLO
    windows that stay live while the process runs, scraped via the
    service's [stats] wire request, the periodic exporter or
    [eitc metrics-report] — as opposed to the post-hoc event sinks
    above.  See {!Metrics} (metrics.mli) for the full story. *)

module Metrics = Metrics

(** {1 Flight recorder}

    Tail-based trace retention: {!Flight.sink} records every event
    into preallocated per-track ring buffers; the request-completion
    path calls {!Flight.retain} (dump the ring as a JSONL black box —
    errors, wedges, tail-latency outliers) or {!Flight.drop} (reset it
    without serializing anything).  The read side ({!Flight.load_dump},
    {!Flight.trace_of_dump}) feeds dumps back through {!Analyze} for
    [eitc postmortem].  See flight.mli for the full story. *)

module Flight : sig
  type t

  type stats = Flight.stats = { kept : int; dropped : int; dumped : int }

  val create : ?capacity:int -> ?dir:string -> unit -> t
  val sink : t -> sink
  (** The recorder as an ordinary sink: [Obs.attach (Obs.Flight.sink fl)]. *)

  val record : t -> event -> unit
  val start : t -> tid:int -> unit
  val drop : t -> tid:int -> unit

  val retain :
    t ->
    tid:int ->
    reason:string ->
    id:string ->
    meta:(string * Json.t) list ->
    string option

  val dump_all :
    t -> reason:string -> meta:(string * Json.t) list -> string option

  val stats : t -> stats

  type dump = Flight.dump = {
    d_path : string;
    d_meta : (string * Json.t) list;
    d_events : Json.t list;
    d_skipped : int;
  }

  val load_dump : string -> (dump, string) result
  val dump_files : string -> string list
  val trace_of_dump : dump -> Json.t
end
