(** Tail-based flight recorder: record every event cheaply into
    preallocated per-track ring buffers, decide retention at request
    {e completion}, and dump the interesting rings as self-contained
    JSONL black boxes.

    This is the inverse of head sampling ([Obs.with_suppressed]): the
    keep/drop decision moves from admission time — when nothing is
    known about the request — to completion time, when its status,
    latency and attempt history are.  A dropped request never
    serializes a byte; a retained one costs one file write of at most
    [capacity] events.

    Users normally reach this module as [Obs.Flight], which adds the
    [sink] glue tying a recorder into the Obs dispatch path.

    Concurrency: safe from any domain.  [record] is serialized by the
    Obs sink mutex; [retain]/[drop]/[dump_all] may race it from a
    completing domain (the watchdog dumps a wedged worker's ring while
    that worker is still emitting), so the recorder locks internally.
    File writes happen on a snapshot, outside the lock. *)

type t

type stats = {
  kept : int;     (** completions whose ring was retained *)
  dropped : int;  (** completions whose ring was reset unserialized *)
  dumped : int;   (** black-box files actually written *)
}

val create : ?capacity:int -> ?dir:string -> unit -> t
(** A recorder with per-track rings of [capacity] events (default
    4096, min 1).  [dir] is where black boxes land — it is created if
    missing; without it, retention still counts and resets rings but
    writes nothing (and {!retain} returns [None]). *)

val record : t -> Obs_event.event -> unit
(** Append to the ring of the event's [tid], overwriting the oldest
    event when full.  No allocation beyond first touch of a track. *)

val start : t -> tid:int -> unit
(** Reset track [tid]'s ring at request start, so a later dump holds
    only this request's events. *)

val drop : t -> tid:int -> unit
(** The request completed uninterestingly: reset the ring, count a
    drop, serialize nothing. *)

val retain :
  t ->
  tid:int ->
  reason:string ->
  id:string ->
  meta:(string * Obs_json.t) list ->
  string option
(** Snapshot and reset track [tid]'s ring and write it as a black box
    [flight-<n>-<id>-<reason>.jsonl] under the recorder's directory:
    line 1 a metadata object (marked ["flight"], with [id], [reason],
    event/overflow counts and [meta]), then one Jsonl-shaped event per
    line.  Returns the file path, or [None] when the recorder has no
    directory or the write failed.  An unknown [tid] (a request that
    never reached a worker) writes a metadata-only dump. *)

val dump_all :
  t -> reason:string -> meta:(string * Obs_json.t) list -> string option
(** The daemon-fatal black box: every live ring, merged in timestamp
    order, as one dump with id ["daemon"].  Rings are left intact. *)

val stats : t -> stats

(** {1 Reading dumps back} *)

type dump = {
  d_path : string;
  d_meta : (string * Obs_json.t) list;  (** the metadata line's fields *)
  d_events : Obs_json.t list;           (** one object per event line *)
  d_skipped : int;  (** unparseable event lines, e.g. cut by a crash *)
}

val load_dump : string -> (dump, string) result
(** Parse a black box.  Tolerant of truncated trailing event lines
    (counted in [d_skipped]); errors only when the file is missing,
    empty, or its first line is not a flight metadata object. *)

val dump_files : string -> string list
(** The [flight-*.jsonl] files under a directory, sorted; [[]] when
    the directory cannot be read. *)

val trace_of_dump : dump -> Obs_json.t
(** Rebuild a Chrome-shaped [{"traceEvents": ...; "otherData": ...}]
    value from a dump, ready for [Obs.Analyze.of_json] — the metadata
    fields become [otherData], so reports are headed by request id and
    retention reason.  Dumps cut mid-span analyze fine: [Analyze] is
    lenient about unmatched ends and unclosed spans. *)
