(* Unified tracing & metrics layer.

   Zero external dependencies (stdlib + unix).  The rest of the stack
   emits structured events through this module; pluggable sinks turn
   them into a JSONL event log, a Chrome trace_event file (loadable in
   about://tracing or https://ui.perfetto.dev), or an in-memory
   aggregate (per-propagator profiles, span statistics, counters).

   Performance contract: with no sink attached, {!enabled} is a single
   atomic load and every helper returns before allocating anything.
   Hot paths (the solver's propagation loop) must guard their own
   argument construction with [if Obs.enabled () then ...] — the
   helpers' laziness only covers what happens inside this module.

   Concurrency: events may arrive from several OCaml 5 domains (the
   portfolio's workers).  One global mutex serializes sink dispatch;
   sinks therefore need no locking of their own.  Events carry a [tid]
   (worker id / machine unit) so per-thread tracks survive the
   serialization. *)

(* The event types live in their own unit (Obs_event) so the flight
   recorder can store raw events without a cycle through this module;
   the manifest equations keep [Obs.event] and [Obs_event.event]
   interchangeable. *)
type value = Obs_event.value = I of int | F of float | S of string | B of bool

type ph = Obs_event.ph =
  | Begin
  | End
  | Instant
  | Counter
  | Complete of float  (* duration in microseconds *)
  | Meta  (* track metadata (Chrome "M"): thread/process names *)

type event = Obs_event.event = {
  name : string;
  cat : string;
  ts_us : float;
  tid : int;
  ph : ph;
  args : (string * value) list;
}

type sink = { on_event : event -> unit; on_close : unit -> unit }

let make_sink ?(close = fun () -> ()) f = { on_event = f; on_close = close }

(* ------------------------------------------------------------------ *)
(* Global sink registry                                                *)

type handle = int

let mutex = Mutex.create ()
let sinks : (handle * sink) list ref = ref []
let next_handle = ref 0
let live = Atomic.make false
let epoch = ref 0.

(* Head-sampled tracing: a domain can suppress its own emission (e.g.
   the service runs an unsampled request's solve under
   [with_suppressed]) while sinks stay attached for everyone else.
   The flag is domain-local state, so it never races; the disabled
   fast path ([live = false]) short-circuits before touching it, so
   "no sink attached" still costs exactly one atomic load. *)
let suppress_key = Domain.DLS.new_key (fun () -> false)

let enabled () = Atomic.get live && not (Domain.DLS.get suppress_key)

let with_suppressed f =
  let old = Domain.DLS.get suppress_key in
  Domain.DLS.set suppress_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set suppress_key old) f

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let attach sink =
  Mutex.lock mutex;
  if !sinks = [] then epoch := Unix.gettimeofday ();
  let h = !next_handle in
  next_handle := h + 1;
  sinks := (h, sink) :: !sinks;
  Atomic.set live true;
  Mutex.unlock mutex;
  h

let detach h =
  Mutex.lock mutex;
  let closing = List.assoc_opt h !sinks in
  sinks := List.filter (fun (h', _) -> h' <> h) !sinks;
  if !sinks = [] then Atomic.set live false;
  Mutex.unlock mutex;
  (* run the sink's close outside the lock: it may do I/O *)
  match closing with Some s -> s.on_close () | None -> ()

let with_sink sink f =
  let h = attach sink in
  Fun.protect ~finally:(fun () -> detach h) f

let emit ev =
  Mutex.lock mutex;
  List.iter (fun (_, s) -> s.on_event ev) !sinks;
  Mutex.unlock mutex

(* ------------------------------------------------------------------ *)
(* Emission helpers (no-ops, allocation-free, when no sink is attached) *)

let span_begin ?(cat = "") ?(tid = 0) ?(args = []) name =
  if enabled () then
    emit { name; cat; ts_us = now_us (); tid; ph = Begin; args }

let span_end ?(cat = "") ?(tid = 0) ?(args = []) name =
  if enabled () then
    emit { name; cat; ts_us = now_us (); tid; ph = End; args }

let span ?cat ?tid ?args name f =
  if enabled () then begin
    span_begin ?cat ?tid name;
    match f () with
    | x ->
      span_end ?cat ?tid ?args name;
      x
    | exception e ->
      span_end ?cat ?tid name;
      raise e
  end
  else f ()

let instant ?(cat = "") ?(tid = 0) ?(args = []) name =
  if enabled () then
    emit { name; cat; ts_us = now_us (); tid; ph = Instant; args }

let counter ?(cat = "") ?(tid = 0) ?ts_us name args =
  if enabled () then
    let ts_us = match ts_us with Some t -> t | None -> now_us () in
    emit { name; cat; ts_us; tid; ph = Counter; args }

let complete ?(cat = "") ?(tid = 0) ?(args = []) ~ts_us ~dur_us name =
  if enabled () then
    emit { name; cat; ts_us; tid; ph = Complete dur_us; args }

(* Track naming: a [thread_name] metadata event labels the (pid, tid)
   track it is emitted on.  The Chrome sink turns it into a ph:"M"
   record so Perfetto shows "worker-2" instead of a bare tid; [Analyze]
   reads it back to label reports. *)
let thread_name ?(cat = "") ?(tid = 0) label =
  if enabled () then
    emit
      {
        name = "thread_name";
        cat;
        ts_us = 0.;
        tid;
        ph = Meta;
        args = [ ("name", S label) ];
      }

(* Per-propagator profile rows: a dedicated shape so the aggregator can
   merge them across portfolio workers without string conventions
   leaking into call sites. *)
let cat_propagator = "propagator"

let profile_row ?(tid = 0) ?(entails = 0) ~name ~runs ~wakes ~prunes ~time_ms
    () =
  if enabled () then
    emit
      {
        name;
        cat = cat_propagator;
        ts_us = now_us ();
        tid;
        ph = Instant;
        args =
          [ ("runs", I runs); ("wakes", I wakes); ("prunes", I prunes);
            ("entails", I entails); ("time_ms", F time_ms) ];
      }

(* ------------------------------------------------------------------ *)
(* JSON lives in its own unit (Obs_json) so the read side ([Analyze])
   can share it without a cycle through this module. *)

module Json = Obs_json

let args_json = Obs_event.args_json

(* ------------------------------------------------------------------ *)
(* Chrome trace_event sink                                             *)

module Chrome = struct
  (* Events go on two Perfetto "processes": pid 1 is the solver stack
     (wall-clock timestamps), pid 2 the simulated machine (cycle
     timestamps) — the scales must not share a track. *)
  let pid_of_cat = function "machine" -> 2 | _ -> 1

  (* Metadata records (ph "M") carry no timestamp. *)
  let meta_json ~pid ~tid name args =
    Printf.sprintf
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":%s}"
      (Json.escape name) pid tid (args_json args)

  let event_json ev =
    match ev.ph with
    | Meta -> meta_json ~pid:(pid_of_cat ev.cat) ~tid:ev.tid ev.name ev.args
    | _ ->
      let ph, extra =
        match ev.ph with
        | Begin -> ("B", "")
        | End -> ("E", "")
        | Instant -> ("i", ",\"s\":\"t\"")
        | Counter -> ("C", "")
        | Complete dur -> ("X", Printf.sprintf ",\"dur\":%s" (Json.float_str dur))
        | Meta -> assert false
      in
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d%s,\"args\":%s}"
        (Json.escape ev.name)
        (Json.escape (if ev.cat = "" then "default" else ev.cat))
        ph
        (Json.float_str ev.ts_us)
        (pid_of_cat ev.cat) ev.tid extra (args_json ev.args)

  (* Track names Perfetto shows instead of bare pid/tid numbers: the
     solver's main thread on pid 1 and the machine's functional units on
     pid 2 are static; portfolio workers announce themselves with
     {!thread_name} when they start. *)
  let metadata =
    [
      meta_json ~pid:1 ~tid:0 "process_name" [ ("name", S "solver") ];
      meta_json ~pid:2 ~tid:0 "process_name"
        [ ("name", S "eit-machine (1us = 1 cycle)") ];
      meta_json ~pid:1 ~tid:0 "thread_name" [ ("name", S "main") ];
      meta_json ~pid:2 ~tid:0 "thread_name" [ ("name", S "vector-core") ];
      meta_json ~pid:2 ~tid:1 "thread_name" [ ("name", S "scalar-accel") ];
      meta_json ~pid:2 ~tid:2 "thread_name" [ ("name", S "index-merge") ];
    ]

  let sink ?(other_data = []) ~path () =
    let started = Unix.gettimeofday () in
    let buf = Buffer.create 4096 in
    List.iter
      (fun m ->
        Buffer.add_string buf m;
        Buffer.add_string buf ",\n")
      metadata;
    let first = ref true in
    let on_event ev =
      if !first then first := false else Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_json ev)
    in
    let close () =
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "{\"traceEvents\":[\n";
          Out_channel.output_string oc (Buffer.contents buf);
          Out_channel.output_string oc "\n],\"displayTimeUnit\":\"ms\"";
          (* [Analyze] and `trace-diff` read these labels back to head
             their reports; the wall-clock start anchors the us-epoch. *)
          Out_channel.output_string oc
            (Printf.sprintf ",\"otherData\":%s"
               (args_json (other_data @ [ ("started_unix", F started) ])));
          Out_channel.output_string oc "}\n")
    in
    make_sink ~close on_event
end

(* ------------------------------------------------------------------ *)
(* JSONL sink: one event object per line, streamed                     *)

module Jsonl = struct
  (* The line shape is shared with flight dumps (Obs_event.jsonl_line):
     one event object per line, pid derived from cat by the readers. *)
  let sink ~path =
    let oc = Out_channel.open_bin path in
    let on_event ev =
      Out_channel.output_string oc (Obs_event.jsonl_line ev);
      Out_channel.output_char oc '\n'
    in
    make_sink ~close:(fun () -> Out_channel.close oc) on_event
end

(* ------------------------------------------------------------------ *)
(* Trace validation: shared by `eitc trace-check` and the test suite   *)

module Check = struct
  (* A trace is structurally valid when every event is an object with a
     string name and phase, Begin/End pairs nest LIFO per (pid, tid)
     with non-decreasing timestamps, and no span is left open.

     [lenient] relaxes exactly the two defects a *truncated* trace
     exhibits — a flight-recorder ring keeps a contiguous suffix of the
     event stream, so a cut can orphan an end (its begin overwritten)
     or leave a span open (the dump happened mid-span), but can never
     manufacture misnesting: any span opened inside the window closes
     inside it before an outer orphaned end arrives.  Misnesting,
     backwards timestamps and malformed events therefore stay errors
     even under [lenient]. *)
  let trace_json ?(lenient = false) (j : Json.t) : (int, string) result =
    let events =
      match j with
      | Json.Arr evs -> Ok evs
      | Json.Obj _ -> (
        match Json.member "traceEvents" j with
        | Some (Json.Arr evs) -> Ok evs
        | Some _ -> Error "\"traceEvents\" is not an array"
        | None -> Error "missing \"traceEvents\"")
      | _ -> Error "trace is neither an object nor an array"
    in
    match events with
    | Error _ as e -> e
    | Ok events -> (
      let stacks : (float * float, (string * float) list) Hashtbl.t =
        Hashtbl.create 8
      in
      let check_event i ev =
        let str k =
          match Json.member k ev with
          | Some (Json.Str s) -> Ok s
          | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
        in
        let num ?default k =
          match (Json.member k ev, default) with
          | Some (Json.Num f), _ -> Ok f
          | None, Some d -> Ok d
          | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
        in
        let ( let* ) = Result.bind in
        let* name = str "name" in
        let* ph = str "ph" in
        if ph = "M" then Ok () (* metadata carries no timestamp *)
        else
          let* ts = num "ts" in
          let* pid = num ~default:0. "pid" in
          let* tid = num ~default:0. "tid" in
          let key = (pid, tid) in
          let stack = Option.value ~default:[] (Hashtbl.find_opt stacks key) in
          match ph with
          | "B" ->
            Hashtbl.replace stacks key ((name, ts) :: stack);
            Ok ()
          | "E" -> (
            match stack with
            | [] ->
              if lenient then Ok ()
              else
                Error
                  (Printf.sprintf "event %d: end of %S with no open span" i name)
            | (open_name, open_ts) :: rest ->
              if open_name <> name then
                Error
                  (Printf.sprintf
                     "event %d: end of %S while %S is open (misnested)" i name
                     open_name)
              else if ts < open_ts then
                Error
                  (Printf.sprintf "event %d: span %S ends before it begins" i
                     name)
              else begin
                Hashtbl.replace stacks key rest;
                Ok ()
              end)
          | "X" -> (
            match Json.member "dur" ev with
            | Some (Json.Num d) when d >= 0. -> Ok ()
            | _ ->
              Error
                (Printf.sprintf "event %d: complete event without dur" i))
          | "i" | "C" -> Ok ()
          | other -> Error (Printf.sprintf "event %d: unknown ph %S" i other)
      in
      let rec go i = function
        | [] -> Ok ()
        | (Json.Obj _ as ev) :: rest -> (
          match check_event i ev with Ok () -> go (i + 1) rest | e -> e)
        | _ -> Error (Printf.sprintf "event %d: not an object" i)
      in
      match go 0 events with
      | Error _ as e -> e
      | Ok () ->
        let unclosed =
          Hashtbl.fold
            (fun _ stack acc -> acc + List.length stack)
            stacks 0
        in
        if unclosed > 0 && not lenient then
          Error (Printf.sprintf "%d span(s) left open" unclosed)
        else Ok (List.length events))

  (* A [--trace] file is one JSON document; a flight-recorder black
     box is JSONL — one event object per line behind a metadata first
     line tagged ["flight": true].  When the whole-file parse fails,
     retry line-by-line: if every non-blank line is a JSON object the
     file is JSONL and the event lines are validated (the flight
     metadata line is skipped — it is not a trace event); otherwise
     the original parse error stands. *)
  let trace_file ?lenient path =
    match Json.parse_file path with
    | Ok j -> trace_json ?lenient j
    | Error whole_err -> (
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error e -> Error e
      | body ->
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' body)
        in
        let rec parse_lines acc i = function
          | [] -> Ok (List.rev acc)
          | l :: rest -> (
            match Json.parse l with
            | Ok (Json.Obj _ as j) ->
              let meta =
                i = 0 && Json.member "flight" j = Some (Json.Bool true)
              in
              parse_lines (if meta then acc else j :: acc) (i + 1) rest
            | Ok _ | Error _ -> Error whole_err)
        in
        (match parse_lines [] 0 lines with
        | Error e -> Error e
        | Ok events -> trace_json ?lenient (Json.Arr events)))
end

(* ------------------------------------------------------------------ *)
(* In-memory aggregator                                                *)

module Agg = struct
  type span_stat = { s_count : int; s_total_us : float }

  type prow = {
    p_runs : int;
    p_wakes : int;
    p_prunes : int;
    p_entails : int;
    p_time_ms : float;
    p_workers : int;
  }

  type t = {
    counts : (string, int) Hashtbl.t;           (* instants by name *)
    gauges : (string, float * float) Hashtbl.t; (* counter key -> last, max *)
    span_stats : (string, span_stat) Hashtbl.t;
    open_spans : (int * string, float list) Hashtbl.t; (* (tid,name) -> start stack *)
    prof : (string, prow) Hashtbl.t;
  }

  let create () =
    {
      counts = Hashtbl.create 32;
      gauges = Hashtbl.create 32;
      span_stats = Hashtbl.create 32;
      open_spans = Hashtbl.create 32;
      prof = Hashtbl.create 32;
    }

  let int_arg args k =
    match List.assoc_opt k args with
    | Some (I i) -> i
    | Some (F f) -> int_of_float f
    | _ -> 0

  let float_arg args k =
    match List.assoc_opt k args with
    | Some (F f) -> f
    | Some (I i) -> float_of_int i
    | _ -> 0.

  let on_event t ev =
    match ev.ph with
    | Instant when ev.cat = cat_propagator ->
      let row =
        {
          p_runs = int_arg ev.args "runs";
          p_wakes = int_arg ev.args "wakes";
          p_prunes = int_arg ev.args "prunes";
          p_entails = int_arg ev.args "entails";
          p_time_ms = float_arg ev.args "time_ms";
          p_workers = 1;
        }
      in
      let merged =
        match Hashtbl.find_opt t.prof ev.name with
        | None -> row
        | Some r ->
          {
            p_runs = r.p_runs + row.p_runs;
            p_wakes = r.p_wakes + row.p_wakes;
            p_prunes = r.p_prunes + row.p_prunes;
            p_entails = r.p_entails + row.p_entails;
            p_time_ms = r.p_time_ms +. row.p_time_ms;
            p_workers = r.p_workers + 1;
          }
      in
      Hashtbl.replace t.prof ev.name merged
    | Instant ->
      Hashtbl.replace t.counts ev.name
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts ev.name))
    | Counter ->
      List.iter
        (fun (k, v) ->
          let f =
            match v with I i -> float_of_int i | F f -> f | _ -> 0.
          in
          let key = if k = "value" then ev.name else ev.name ^ "." ^ k in
          let _, mx =
            Option.value ~default:(f, f) (Hashtbl.find_opt t.gauges key)
          in
          Hashtbl.replace t.gauges key (f, Float.max mx f))
        ev.args
    | Begin ->
      let key = (ev.tid, ev.name) in
      let stack = Option.value ~default:[] (Hashtbl.find_opt t.open_spans key) in
      Hashtbl.replace t.open_spans key (ev.ts_us :: stack)
    | End -> (
      let key = (ev.tid, ev.name) in
      match Hashtbl.find_opt t.open_spans key with
      | Some (t0 :: rest) ->
        Hashtbl.replace t.open_spans key rest;
        let st =
          Option.value
            ~default:{ s_count = 0; s_total_us = 0. }
            (Hashtbl.find_opt t.span_stats ev.name)
        in
        Hashtbl.replace t.span_stats ev.name
          { s_count = st.s_count + 1; s_total_us = st.s_total_us +. (ev.ts_us -. t0) }
      | _ -> () (* unmatched end: drop *))
    | Complete dur ->
      let st =
        Option.value
          ~default:{ s_count = 0; s_total_us = 0. }
          (Hashtbl.find_opt t.span_stats ev.name)
      in
      Hashtbl.replace t.span_stats ev.name
        { s_count = st.s_count + 1; s_total_us = st.s_total_us +. dur }
    | Meta -> ()

  let sink t = make_sink (on_event t)

  let sorted_fold tbl cmp =
    List.sort cmp (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

  let counts t = sorted_fold t.counts (fun (_, a) (_, b) -> compare b a)

  let gauges t =
    sorted_fold t.gauges (fun (a, _) (b, _) -> compare (a : string) b)

  let spans t =
    sorted_fold t.span_stats (fun (_, a) (_, b) ->
        compare b.s_total_us a.s_total_us)

  let profiles t =
    sorted_fold t.prof (fun (_, a) (_, b) ->
        match compare b.p_time_ms a.p_time_ms with
        | 0 -> compare b.p_runs a.p_runs
        | c -> c)
end

(* ------------------------------------------------------------------ *)
(* Trace analytics: span forests, flame graphs, utilization, diffing.
   Lives in its own unit; re-exported here so users write
   [Obs.Analyze.of_file]. *)

module Analyze = Analyze

(* Live metrics registry (counters / gauges / histograms / SLO), the
   always-on counterpart to the sinks above; re-exported like
   [Analyze] so users write [Obs.Metrics.histogram]. *)
module Metrics = Metrics

(* Tail-based flight recorder (ring-buffer sink + black-box dumps);
   re-exported with the glue that ties a recorder into the dispatch
   path, so users write [Obs.attach (Obs.Flight.sink fl)]. *)
module Flight = struct
  include Flight

  let sink t = make_sink (record t)
end
