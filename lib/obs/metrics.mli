(** Live runtime telemetry: a domain-safe registry of counters, gauges,
    log-linear quantile histograms and rolling-window SLO trackers,
    cheap enough to leave on in production.

    This is the {e always-on} counterpart to the event-sink layer in
    {!Obs}: sinks record everything that happened (full traces, offline
    analysis); a [Metrics.registry] keeps a few kilobytes of live
    aggregates — request latency quantiles, error rates, work-per-solve
    distributions — that a scraper, the [stats] wire request or the
    periodic {!exporter} can read at any time while the service runs.

    Concurrency: every instrument may be updated from any OCaml 5
    domain.  Counters and gauges are single atomics; histograms and SLO
    windows take a per-instrument mutex (a handful of writes per
    request, never inside the solver's hot loop).  Increments are never
    lost: concurrent updates from N domains sum exactly.

    Cost when disabled: each registry carries an enabled flag; with it
    off, every record operation is one atomic load and allocates
    nothing (pinned by the t_obs zero-allocation test). *)

type registry

val create : ?enabled:bool -> unit -> registry
(** A fresh, empty registry ([enabled] defaults to [true]). *)

val default : registry
(** The process-wide registry fed by instrumented library code
    ({!Fd.Search}, {!Sched.Solve}) when no explicit registry is passed.
    Starts {e disabled} so standalone solver use pays one atomic load
    per solve and nothing more. *)

val set_enabled : registry -> bool -> unit
val is_enabled : registry -> bool

val reset : registry -> unit
(** Drop every instrument.  Existing instrument handles keep working
    but are no longer reachable from snapshots. *)

(** {1 Counters and gauges} *)

type counter

val counter : registry -> string -> counter
(** Find-or-create the named monotonic counter.  Raises
    [Invalid_argument] if the name is already a different kind of
    instrument. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Log-linear HDR-style: each power of two is split into [2^sig_bits]
    linear sub-buckets, so any recorded value is represented by its
    bucket midpoint with relative error at most [2^-(sig_bits+1)]
    ({!relative_error}) — quantiles without retaining samples, in
    O(occupied buckets) memory.  Values [<= 0] land in a dedicated
    zero bucket represented exactly as [0.]. *)

type histogram

val histogram : ?sig_bits:int -> registry -> string -> histogram
(** Find-or-create.  [sig_bits] (default 7, i.e. relative error
    1/256 < 0.4%) is fixed at creation; a later lookup ignores it. *)

val observe : histogram -> float -> unit

val relative_error : histogram -> float
(** The guaranteed bound: [2. ** -. (sig_bits + 1)].  For any recorded
    value [v > 0], the representative value of its bucket differs from
    [v] by at most [relative_error h *. v]; quantile estimates are
    representative values of the bucket holding the requested rank, so
    they carry the same bound relative to the exact sorted-sample
    quantile of identical rank. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0;1]: the representative value of the
    bucket containing the [ceil (q * count)]-th smallest recorded
    value ([0.] when empty). *)

type hstats = {
  count : int;
  sum : float;
  vmin : float;  (** exact (not bucketed); [0.] when empty *)
  vmax : float;  (** exact; [0.] when empty *)
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

val hstats : histogram -> hstats
(** One consistent snapshot (single lock acquisition). *)

val exemplar : histogram -> float -> string -> unit
(** [exemplar h v trace] links an observed value to a trace reference
    (e.g. a flight-dump file name), so snapshots can answer "show me a
    trace behind this distribution".  Kept newest-first, capped at 8;
    a no-op on a disabled registry.  Exemplars annotate — they do not
    contribute to counts or quantiles; pair with {!observe}. *)

val exemplars : histogram -> (float * string) list
(** The current exemplar trail, newest first. *)

val merge_into : into:histogram -> histogram -> unit
(** Add [src]'s buckets, count, sum and min/max into [into] — e.g. to
    combine per-domain histograms.  Both histograms must use the same
    [sig_bits] (raises [Invalid_argument] otherwise).  The source is
    left unchanged. *)

(** {1 Rolling-window SLO tracker} *)

type slo

val slo : ?window:int -> registry -> string -> slo
(** Find-or-create a tracker over the last [window] (default 512)
    outcomes. *)

val slo_record : slo -> ok:bool -> deadline_met:bool -> unit

type slo_stats = {
  window : int;
  seen : int;   (** outcomes currently in the window *)
  total : int;  (** lifetime outcomes recorded *)
  ok : int;     (** in-window outcomes with [ok = true] *)
  met : int;    (** in-window outcomes with [deadline_met = true] *)
  error_rate : float;         (** [1 - ok/seen] ([0.] when empty) *)
  deadline_hit_rate : float;  (** [met/seen] ([1.] when empty) *)
}

val slo_stats : slo -> slo_stats

(** {1 Snapshots and export} *)

val snapshot_json : ?ts:float -> registry -> Obs_json.t
(** The whole registry as one JSON object: [ts_unix], then
    [counters] / [gauges] / [histograms] (with quantiles and the
    relative-error bound, plus an ["exemplars"] array when any are
    linked) / [slo], each sorted by instrument name.  [ts] defaults to
    [Unix.gettimeofday ()]. *)

val prometheus : registry -> string
(** Prometheus text exposition: counters and gauges as single samples,
    histograms as summaries ([name{quantile="0.99"} v] plus [_sum] /
    [_count] / [_min] / [_max]), SLO trackers as two gauges.
    Instrument names are sanitized ([a-zA-Z0-9_] only). *)

type exporter

val exporter_start :
  ?interval_ms:float -> ?prom_path:string -> path:string -> registry -> exporter
(** Spawn a background domain that appends one {!snapshot_json} line to
    [path] (JSONL) every [interval_ms] (default 1000) and, when
    [prom_path] is given, rewrites it with {!prometheus} on the same
    cadence. *)

val exporter_stop : exporter -> unit
(** Stop the domain and flush one final snapshot, so even a session
    shorter than [interval_ms] leaves a complete snapshot behind.
    Idempotent. *)
