(* The event vocabulary shared by the emit side (Obs), the flight
   recorder (Flight) and the sinks.

   Lives in its own unit so [Flight] can hold raw events in its ring
   buffers — deferring all serialization to dump time — without a
   dependency cycle through the Obs module, which re-exports Flight.
   [Obs] re-exports these types with manifest equations, so
   [Obs.event] and [Obs_event.event] are the same type. *)

type value = I of int | F of float | S of string | B of bool

type ph =
  | Begin
  | End
  | Instant
  | Counter
  | Complete of float  (* duration in microseconds *)
  | Meta  (* track metadata (Chrome "M"): thread/process names *)

type event = {
  name : string;
  cat : string;
  ts_us : float;
  tid : int;
  ph : ph;
  args : (string * value) list;
}

let ph_str = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Counter -> "C"
  | Complete _ -> "X"
  | Meta -> "M"

let value_json = function
  | I i -> string_of_int i
  | F f -> Obs_json.float_str f
  | S s -> "\"" ^ Obs_json.escape s ^ "\""
  | B b -> string_of_bool b

let args_json args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> "\"" ^ Obs_json.escape k ^ "\":" ^ value_json v)
         args)
  ^ "}"

(* One event as one JSON line (no trailing newline) — the shape the
   Jsonl sink streams and flight dumps replay.  [Analyze] derives the
   pid from [cat], so these events need none. *)
let jsonl_line ev =
  let dur =
    match ev.ph with
    | Complete d -> Printf.sprintf ",\"dur\":%s" (Obs_json.float_str d)
    | _ -> ""
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"tid\":%d%s,\"args\":%s}"
    (Obs_json.escape ev.name) (Obs_json.escape ev.cat) (ph_str ev.ph)
    (Obs_json.float_str ev.ts_us) ev.tid dur (args_json ev.args)

(* Inverse of {!jsonl_line}, for round-trip checks and dump tooling.
   JSON numbers carry no int/float tag, so [I] args come back as [F];
   null/array/object args (never produced by [jsonl_line]) are
   dropped. *)
let event_of_json j =
  let str k =
    match Obs_json.member k j with Some (Obs_json.Str s) -> Some s | _ -> None
  in
  let num k =
    match Obs_json.member k j with Some (Obs_json.Num f) -> Some f | _ -> None
  in
  match (str "name", str "ph") with
  | Some name, Some p -> (
    let ph =
      match p with
      | "B" -> Some Begin
      | "E" -> Some End
      | "i" -> Some Instant
      | "C" -> Some Counter
      | "M" -> Some Meta
      | "X" -> Some (Complete (Option.value ~default:0. (num "dur")))
      | _ -> None
    in
    match ph with
    | None -> None
    | Some ph ->
      let args =
        match Obs_json.member "args" j with
        | Some (Obs_json.Obj kvs) ->
          List.filter_map
            (fun (k, v) ->
              match v with
              | Obs_json.Num f -> Some (k, F f)
              | Obs_json.Str s -> Some (k, S s)
              | Obs_json.Bool b -> Some (k, B b)
              | _ -> None)
            kvs
        | _ -> []
      in
      Some
        {
          name;
          cat = Option.value ~default:"" (str "cat");
          ts_us = Option.value ~default:0. (num "ts");
          tid = int_of_float (Option.value ~default:0. (num "tid"));
          ph;
          args;
        })
  | _ -> None
