(* Trace analytics: the read side of the observability layer.

   [Obs] and its sinks *emit* Chrome trace_event files; this module
   turns them back into decisions.  From a parsed trace it rebuilds the
   span forest per (pid, tid) track, computes inclusive/exclusive
   times, folds the forest into collapsed-stack lines (the
   FlameGraph/speedscope format), extracts the critical path through
   the scheduler's phase spans, derives machine utilization from the
   pid-2 cycle timeline, and structurally diffs two traces — the last
   of which backs the `eitc trace-diff` CI regression gate.

   Everything operates on [Obs_json.t] (exposed as [Obs.Json.t]), so a
   trace written by any tool that speaks the Chrome format can be
   analyzed, not only our own sink's output. *)

module Json = Obs_json

(* ------------------------------------------------------------------ *)
(* Data model                                                          *)

type node = {
  n_name : string;
  n_cat : string;
  n_ts : float;    (* start, us (pid 1) / cycles (pid 2) *)
  n_incl : float;  (* inclusive duration *)
  n_excl : float;  (* exclusive = inclusive - sum of children *)
  n_children : node list;  (* in emission order *)
}

type track = {
  tr_pid : int;
  tr_tid : int;
  tr_label : string;  (* "solver/main", "eit-machine/vector-core", ... *)
  tr_roots : node list;
}

type profile = {
  a_runs : int;
  a_wakes : int;
  a_prunes : int;
  a_time_ms : float;
}

type machine = {
  mc_cycles : int;           (* timeline horizon (cycles observed) *)
  mc_busy_lane_cycles : int; (* sum over cycles of busy lanes *)
  mc_peak_lanes : int;
  mc_avg_lanes : float;
  mc_lane_util : float;      (* busy-lane-cycles / (cycles * peak), % *)
  mc_unit_busy : (string * int) list;  (* functional unit -> busy cycles *)
  mc_read_hist : (int * int) list;     (* reads per cycle -> #cycles *)
  mc_write_hist : (int * int) list;
  mc_peak_reads : int;
  mc_peak_accesses : int;    (* max reads+writes in any one cycle *)
}

type summary = {
  sm_other : (string * Json.t) list;   (* otherData: kernel, slots, ... *)
  sm_tracks : track list;              (* sorted by (pid, tid) *)
  sm_span_stats : ((string * string) * (int * float)) list;
      (* (track label, span name) -> count, total inclusive us *)
  sm_profiles : (string * profile) list;  (* propagator rows, merged *)
  sm_counts : (string * int) list;        (* instant tallies *)
  sm_machine : machine option;
  sm_events : int;
}

(* ------------------------------------------------------------------ *)
(* Parsing helpers                                                     *)

let str_mem k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let num_mem k j =
  match Json.member k j with Some (Json.Num f) -> Some f | _ -> None

let int_mem k j = Option.map int_of_float (num_mem k j)

let arg_num ev k =
  match Json.member "args" ev with
  | Some args -> num_mem k args
  | None -> None

let label_of other =
  let field k =
    match List.assoc_opt k other with
    | Some (Json.Str s) -> Some (Printf.sprintf "%s=%s" k s)
    | Some (Json.Num f) -> Some (Printf.sprintf "%s=%s" k (Json.float_str f))
    | _ -> None
  in
  String.concat " " (List.filter_map field [ "kernel"; "mode"; "slots"; "bench" ])

(* ------------------------------------------------------------------ *)
(* Span-forest reconstruction                                          *)

(* An open span: children collect reversed until the matching End. *)
type frame = {
  f_name : string;
  f_cat : string;
  f_ts : float;
  mutable f_children : node list;
}

let close_frame f ~end_ts =
  let children = List.rev f.f_children in
  let incl = Float.max 0. (end_ts -. f.f_ts) in
  let child_sum = List.fold_left (fun a c -> a +. c.n_incl) 0. children in
  {
    n_name = f.f_name;
    n_cat = f.f_cat;
    n_ts = f.f_ts;
    n_incl = incl;
    n_excl = Float.max 0. (incl -. child_sum);
    n_children = children;
  }

let of_json (j : Json.t) : (summary, string) result =
  let events =
    match j with
    | Json.Arr evs -> Ok evs
    | Json.Obj _ -> (
      match Json.member "traceEvents" j with
      | Some (Json.Arr evs) -> Ok evs
      | Some _ -> Error "\"traceEvents\" is not an array"
      | None -> Error "missing \"traceEvents\"")
    | _ -> Error "trace is neither an object nor an array"
  in
  match events with
  | Error e -> Error e
  | Ok events ->
    let other =
      match Json.member "otherData" j with
      | Some (Json.Obj fields) -> fields
      | _ -> []
    in
    (* per-track state *)
    let stacks : (int * int, frame list) Hashtbl.t = Hashtbl.create 8 in
    let roots : (int * int, node list) Hashtbl.t = Hashtbl.create 8 in
    let last_ts : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
    let procs : (int, string) Hashtbl.t = Hashtbl.create 4 in
    let threads : (int * int, string) Hashtbl.t = Hashtbl.create 8 in
    let counts : (string, int) Hashtbl.t = Hashtbl.create 32 in
    let profiles : (string, profile) Hashtbl.t = Hashtbl.create 16 in
    (* machine timeline series, keyed by cycle *)
    let lanes : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let reads : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let writes : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let n_events = ref 0 in
    let push_root key n =
      Hashtbl.replace roots key
        (n :: Option.value ~default:[] (Hashtbl.find_opt roots key))
    in
    let attach key n =
      match Hashtbl.find_opt stacks key with
      | Some (f :: _) -> f.f_children <- n :: f.f_children
      | _ -> push_root key n
    in
    let step ev =
      incr n_events;
      let name = Option.value ~default:"" (str_mem "name" ev) in
      let ph = Option.value ~default:"" (str_mem "ph" ev) in
      let cat = Option.value ~default:"" (str_mem "cat" ev) in
      let pid =
        match int_mem "pid" ev with
        | Some p -> p
        | None -> if cat = "machine" then 2 else 1
      in
      let tid = Option.value ~default:0 (int_mem "tid" ev) in
      let key = (pid, tid) in
      if ph = "M" then begin
        match (name, Option.bind (Json.member "args" ev) (str_mem "name")) with
        | "process_name", Some label -> Hashtbl.replace procs pid label
        | "thread_name", Some label -> Hashtbl.replace threads key label
        | _ -> ()
      end
      else begin
        let ts = Option.value ~default:0. (num_mem "ts" ev) in
        Hashtbl.replace last_ts key
          (Float.max ts
             (Option.value ~default:ts (Hashtbl.find_opt last_ts key)));
        match ph with
        | "B" ->
          Hashtbl.replace stacks key
            ({ f_name = name; f_cat = cat; f_ts = ts; f_children = [] }
            :: Option.value ~default:[] (Hashtbl.find_opt stacks key))
        | "E" -> (
          match Hashtbl.find_opt stacks key with
          | Some (f :: rest) ->
            Hashtbl.replace stacks key rest;
            attach key (close_frame f ~end_ts:ts)
          | _ -> () (* unmatched end: ignore, the checker flags these *))
        | "X" ->
          let dur = Option.value ~default:0. (num_mem "dur" ev) in
          Hashtbl.replace last_ts key
            (Float.max (ts +. dur)
               (Option.value ~default:ts (Hashtbl.find_opt last_ts key)));
          attach key
            {
              n_name = name;
              n_cat = cat;
              n_ts = ts;
              n_incl = dur;
              n_excl = dur;
              n_children = [];
            }
        | "i" ->
          if cat = "propagator" then begin
            let g k = int_of_float (Option.value ~default:0. (arg_num ev k)) in
            let row =
              {
                a_runs = g "runs";
                a_wakes = g "wakes";
                a_prunes = g "prunes";
                a_time_ms = Option.value ~default:0. (arg_num ev "time_ms");
              }
            in
            let merged =
              match Hashtbl.find_opt profiles name with
              | None -> row
              | Some p ->
                {
                  a_runs = p.a_runs + row.a_runs;
                  a_wakes = p.a_wakes + row.a_wakes;
                  a_prunes = p.a_prunes + row.a_prunes;
                  a_time_ms = p.a_time_ms +. row.a_time_ms;
                }
            in
            Hashtbl.replace profiles name merged
          end
          else
            Hashtbl.replace counts name
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
        | "C" ->
          if pid = 2 then begin
            let cycle = int_of_float ts in
            let put tbl k =
              match arg_num ev k with
              | Some v -> Hashtbl.replace tbl cycle (int_of_float v)
              | None -> ()
            in
            match name with
            | "lanes" -> put lanes "busy"
            | "bank-ports" ->
              put reads "reads";
              put writes "writes"
            | _ -> ()
          end
        | _ -> ()
      end
    in
    List.iter
      (fun ev -> match ev with Json.Obj _ -> step ev | _ -> ())
      events;
    (* close anything left open at the track's last timestamp *)
    Hashtbl.iter
      (fun key stack ->
        let ts = Option.value ~default:0. (Hashtbl.find_opt last_ts key) in
        List.iter
          (fun f ->
            (* innermost first: each close attaches to the next frame out,
               which is still on the list we're iterating *)
            Hashtbl.replace stacks key
              (List.tl (Hashtbl.find stacks key));
            attach key (close_frame f ~end_ts:ts))
          stack)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stacks []
      |> List.filter (fun (_, v) -> v <> [])
      |> List.to_seq |> Hashtbl.of_seq);
    let label_for (pid, tid) =
      let proc =
        match Hashtbl.find_opt procs pid with
        | Some p -> (
          (* "eit-machine (1us = 1 cycle)" -> "eit-machine" *)
          match String.index_opt p ' ' with
          | Some i -> String.sub p 0 i
          | None -> p)
        | None -> Printf.sprintf "pid%d" pid
      in
      let thr =
        match Hashtbl.find_opt threads (pid, tid) with
        | Some t -> t
        | None -> Printf.sprintf "tid%d" tid
      in
      proc ^ "/" ^ thr
    in
    let track_keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) roots []
      |> List.sort_uniq compare
    in
    let tracks =
      List.map
        (fun key ->
          let pid, tid = key in
          {
            tr_pid = pid;
            tr_tid = tid;
            tr_label = label_for key;
            tr_roots = List.rev (Option.value ~default:[] (Hashtbl.find_opt roots key));
          })
        track_keys
    in
    (* span statistics per (track label, name), all nesting depths *)
    let span_stats : (string * string, int * float) Hashtbl.t =
      Hashtbl.create 32
    in
    List.iter
      (fun tr ->
        let rec walk n =
          let k = (tr.tr_label, n.n_name) in
          let c, t =
            Option.value ~default:(0, 0.) (Hashtbl.find_opt span_stats k)
          in
          Hashtbl.replace span_stats k (c + 1, t +. n.n_incl);
          List.iter walk n.n_children
        in
        List.iter walk tr.tr_roots)
      tracks;
    let machine =
      let series tbl = Hashtbl.fold (fun c v acc -> (c, v) :: acc) tbl [] in
      let lane_s = series lanes and read_s = series reads
      and write_s = series writes in
      let unit_intervals =
        List.concat_map
          (fun tr ->
            if tr.tr_pid <> 2 then []
            else
              List.map
                (fun n -> (tr.tr_label, n.n_ts, n.n_incl))
                tr.tr_roots)
          tracks
      in
      if lane_s = [] && read_s = [] && unit_intervals = [] then None
      else begin
        let horizon =
          List.fold_left
            (fun acc (c, _) -> max acc c)
            (List.fold_left
               (fun acc (_, ts, d) -> max acc (int_of_float (ts +. d) - 1))
               (-1) unit_intervals)
            (lane_s @ read_s @ write_s)
        in
        let cycles = horizon + 1 in
        let busy = List.fold_left (fun a (_, v) -> a + v) 0 lane_s in
        let peak = List.fold_left (fun a (_, v) -> max a v) 0 lane_s in
        let hist s =
          let h = Hashtbl.create 8 in
          List.iter
            (fun (_, v) ->
              Hashtbl.replace h v
                (1 + Option.value ~default:0 (Hashtbl.find_opt h v)))
            s;
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])
        in
        (* busy cycles per functional unit: union of issue intervals *)
        let unit_busy =
          let by_unit = Hashtbl.create 4 in
          List.iter
            (fun (u, ts, d) ->
              Hashtbl.replace by_unit u
                ((ts, ts +. Float.max 1. d)
                :: Option.value ~default:[] (Hashtbl.find_opt by_unit u)))
            unit_intervals;
          Hashtbl.fold
            (fun u ivs acc ->
              let sorted = List.sort compare ivs in
              let covered, last_end =
                List.fold_left
                  (fun (cov, last) (s, e) ->
                    if e <= last then (cov, last)
                    else (cov +. (e -. Float.max s last), Float.max last e))
                  (0., neg_infinity) sorted
              in
              ignore last_end;
              (u, int_of_float covered) :: acc)
            by_unit []
          |> List.sort compare
        in
        let reads_per_cycle = List.map snd read_s in
        let peak_reads = List.fold_left max 0 reads_per_cycle in
        let peak_accesses =
          List.fold_left
            (fun acc (c, r) ->
              let w =
                Option.value ~default:0 (List.assoc_opt c write_s)
              in
              max acc (r + w))
            (List.fold_left (fun a (_, w) -> max a w) 0 write_s)
            read_s
        in
        Some
          {
            mc_cycles = cycles;
            mc_busy_lane_cycles = busy;
            mc_peak_lanes = peak;
            mc_avg_lanes =
              (if cycles = 0 then 0. else float_of_int busy /. float_of_int cycles);
            mc_lane_util =
              (if cycles = 0 || peak = 0 then 0.
               else
                 100. *. float_of_int busy
                 /. (float_of_int cycles *. float_of_int peak));
            mc_unit_busy = unit_busy;
            mc_read_hist = hist read_s;
            mc_write_hist = hist write_s;
            mc_peak_reads = peak_reads;
            mc_peak_accesses = peak_accesses;
          }
      end
    in
    let sorted_assoc tbl cmp =
      List.sort cmp (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    in
    Ok
      {
        sm_other = other;
        sm_tracks = tracks;
        sm_span_stats =
          sorted_assoc span_stats (fun ((_, _), (_, a)) ((_, _), (_, b)) ->
              compare b a);
        sm_profiles =
          sorted_assoc profiles (fun (_, a) (_, b) ->
              match compare b.a_time_ms a.a_time_ms with
              | 0 -> compare b.a_runs a.a_runs
              | c -> c);
        sm_counts = sorted_assoc counts (fun (_, a) (_, b) -> compare b a);
        sm_machine = machine;
        sm_events = !n_events;
      }

let of_file path =
  match Json.parse_file path with
  | Error e -> Error e
  | Ok j -> of_json j

let label s = label_of s.sm_other

(* ------------------------------------------------------------------ *)
(* Folded stacks (FlameGraph / speedscope collapsed format)            *)

let sanitize_frame name =
  String.map (function ';' -> ',' | c -> c) (if name = "" then "?" else name)

let folded s =
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let add key v =
    if not (Hashtbl.mem tbl key) then order := key :: !order;
    Hashtbl.replace tbl key
      (v +. Option.value ~default:0. (Hashtbl.find_opt tbl key))
  in
  List.iter
    (fun tr ->
      let rec walk prefix n =
        let stack = prefix ^ ";" ^ sanitize_frame n.n_name in
        add stack n.n_excl;
        List.iter (walk stack) n.n_children
      in
      List.iter (walk (sanitize_frame tr.tr_label)) tr.tr_roots)
    s.sm_tracks;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order

let write_folded path s =
  Out_channel.with_open_bin path (fun oc ->
      List.iter
        (fun (stack, self_us) ->
          let v = max 0 (int_of_float (Float.round self_us)) in
          Out_channel.output_string oc
            (Printf.sprintf "%s %d\n" stack v))
        (folded s))

(* ------------------------------------------------------------------ *)
(* Critical path through the scheduler's phase spans                   *)

let critical_path s =
  match
    List.find_opt (fun tr -> tr.tr_pid = 1 && tr.tr_tid = 0) s.sm_tracks
  with
  | None -> []
  | Some tr ->
    let sched_roots =
      match List.filter (fun n -> n.n_cat = "sched") tr.tr_roots with
      | [] -> tr.tr_roots
      | r -> r
    in
    let heaviest =
      List.fold_left
        (fun best n ->
          match best with
          | Some b when b.n_incl >= n.n_incl -> best
          | _ -> Some n)
        None
    in
    let rec down acc n =
      let acc = n :: acc in
      match heaviest n.n_children with
      | None -> List.rev acc
      | Some c -> down acc c
    in
    (match heaviest sched_roots with None -> [] | Some r -> down [] r)

(* The heaviest sched-phase root: its inclusive time is the number the
   report table leads with (and what tests compare against Agg). *)
let root_inclusive s =
  match critical_path s with [] -> None | n :: _ -> Some n.n_incl

(* ------------------------------------------------------------------ *)
(* Trace diff                                                          *)

type span_delta = {
  sd_key : string * string;  (* track label, span name *)
  sd_count_b : int;
  sd_count_a : int;
  sd_total_b : float;  (* us *)
  sd_total_a : float;
}

type profile_delta = {
  pd_name : string;
  pd_before : profile option;
  pd_after : profile option;
}

type count_delta = { cd_name : string; cd_before : int; cd_after : int }

type diff = {
  df_label_b : string;
  df_label_a : string;
  df_spans : span_delta list;   (* matched by (track, name) *)
  df_new : (string * string) list;   (* in after only *)
  df_gone : (string * string) list;  (* in before only *)
  df_profiles : profile_delta list;
  df_counts : count_delta list;
}

let diff before after =
  let matched =
    List.filter_map
      (fun (k, (cb, tb)) ->
        match List.assoc_opt k after.sm_span_stats with
        | Some (ca, ta) ->
          Some
            {
              sd_key = k;
              sd_count_b = cb;
              sd_count_a = ca;
              sd_total_b = tb;
              sd_total_a = ta;
            }
        | None -> None)
      before.sm_span_stats
  in
  let only l r =
    List.filter_map
      (fun (k, _) -> if List.mem_assoc k r then None else Some k)
      l
  in
  let prof_names =
    List.sort_uniq compare
      (List.map fst before.sm_profiles @ List.map fst after.sm_profiles)
  in
  let count_names =
    List.sort_uniq compare
      (List.map fst before.sm_counts @ List.map fst after.sm_counts)
  in
  {
    df_label_b = label before;
    df_label_a = label after;
    df_spans = matched;
    df_new = only after.sm_span_stats before.sm_span_stats;
    df_gone = only before.sm_span_stats after.sm_span_stats;
    df_profiles =
      List.map
        (fun n ->
          {
            pd_name = n;
            pd_before = List.assoc_opt n before.sm_profiles;
            pd_after = List.assoc_opt n after.sm_profiles;
          })
        prof_names;
    df_counts =
      List.map
        (fun n ->
          {
            cd_name = n;
            cd_before = Option.value ~default:0 (List.assoc_opt n before.sm_counts);
            cd_after = Option.value ~default:0 (List.assoc_opt n after.sm_counts);
          })
        count_names;
  }

(* The regression gate.  Watched metrics are the *deterministic* work
   counters — propagator runs (total and per class) and search
   branch/fail tallies.  Wall-clock time is advisory only: it is noisy
   in CI, so it is printed but never gates. *)
let regressions ?(threshold = 10.) d =
  let out = ref [] in
  let flag name before after =
    if before > 0 && float_of_int after > float_of_int before *. (1. +. (threshold /. 100.))
    then
      out :=
        Printf.sprintf "%s: %d -> %d (+%.1f%% > %.0f%%)" name before after
          (100. *. (float_of_int (after - before) /. float_of_int before))
          threshold
        :: !out
  in
  let runs side =
    List.fold_left
      (fun acc p ->
        match p with Some p -> acc + p.a_runs | None -> acc)
      0 side
  in
  let before_total = runs (List.map (fun p -> p.pd_before) d.df_profiles) in
  let after_total = runs (List.map (fun p -> p.pd_after) d.df_profiles) in
  flag "propagations/total" before_total after_total;
  List.iter
    (fun p ->
      match (p.pd_before, p.pd_after) with
      | Some b, Some a -> flag ("propagations/" ^ p.pd_name) b.a_runs a.a_runs
      | _ -> ())
    d.df_profiles;
  List.iter
    (fun c ->
      if c.cd_name = "branch" || c.cd_name = "fail" then
        flag ("events/" ^ c.cd_name) c.cd_before c.cd_after)
    d.df_counts;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Report printing                                                     *)

let pp_tree ppf tr =
  Format.fprintf ppf "track %s (pid %d, tid %d)@." tr.tr_label tr.tr_pid
    tr.tr_tid;
  Format.fprintf ppf "  %-36s %8s %12s %12s@." "span" "count" "incl (ms)"
    "excl (ms)";
  (* siblings with the same name are aggregated per level, so 160
     machine issues of the same opcode print as one row *)
  let rec level depth nodes =
    let seen = Hashtbl.create 8 in
    let groups =
      List.filter_map
        (fun n ->
          if Hashtbl.mem seen n.n_name then None
          else begin
            Hashtbl.add seen n.n_name ();
            Some
              (n.n_name, List.filter (fun m -> m.n_name = n.n_name) nodes)
          end)
        nodes
    in
    List.iter
      (fun (name, ns) ->
        let incl = List.fold_left (fun a n -> a +. n.n_incl) 0. ns in
        let excl = List.fold_left (fun a n -> a +. n.n_excl) 0. ns in
        let indent = String.make (2 * depth) ' ' in
        Format.fprintf ppf "  %-36s %8d %12.2f %12.2f@."
          (indent ^ name) (List.length ns) (incl /. 1000.) (excl /. 1000.);
        level (depth + 1) (List.concat_map (fun n -> n.n_children) ns))
      groups
  in
  level 0 tr.tr_roots

let pp_critical_path ppf s =
  match critical_path s with
  | [] -> ()
  | path ->
    Format.fprintf ppf "@.critical path (heaviest child chain):@.";
    List.iteri
      (fun i n ->
        Format.fprintf ppf "  %s%-30s %10.2f ms (self %.2f)@."
          (String.make (2 * i) ' ')
          n.n_name (n.n_incl /. 1000.) (n.n_excl /. 1000.))
      path

let pp_profiles ppf = function
  | [] -> ()
  | ps ->
    Format.fprintf ppf "@.%-22s %10s %10s %10s %12s@." "propagator" "runs"
      "wakes" "prunes" "time (ms)";
    List.iter
      (fun (n, p) ->
        Format.fprintf ppf "%-22s %10d %10d %10d %12.2f@." n p.a_runs
          p.a_wakes p.a_prunes p.a_time_ms)
      ps

let pp_utilization ppf m =
  Format.fprintf ppf "@.machine utilization (%d cycles)@." m.mc_cycles;
  Format.fprintf ppf "  vector lanes: avg %.2f busy, peak %d, utilization %.1f%%@."
    m.mc_avg_lanes m.mc_peak_lanes m.mc_lane_util;
  List.iter
    (fun (u, busy) ->
      Format.fprintf ppf "  %-28s busy %d/%d cycles (%.1f%%)@." u busy
        m.mc_cycles
        (if m.mc_cycles = 0 then 0.
         else 100. *. float_of_int busy /. float_of_int m.mc_cycles))
    m.mc_unit_busy;
  let hist title h peak =
    Format.fprintf ppf "  %s (peak %d):@." title peak;
    List.iter
      (fun (v, cnt) ->
        if v > 0 then Format.fprintf ppf "    %2d/cycle x %d cycles@." v cnt)
      h
  in
  hist "bank-port reads histogram" m.mc_read_hist m.mc_peak_reads;
  hist "bank-port writes histogram" m.mc_write_hist
    (List.fold_left (fun a (v, _) -> max a v) 0 m.mc_write_hist);
  Format.fprintf ppf "  peak simultaneous vector accesses: %d@."
    m.mc_peak_accesses

let pp_report ?(utilization = false) ppf s =
  (match label s with
  | "" -> ()
  | l -> Format.fprintf ppf "labels: %s@." l);
  Format.fprintf ppf "%d events, %d tracks@." s.sm_events
    (List.length s.sm_tracks);
  List.iter
    (fun tr -> if tr.tr_roots <> [] then pp_tree ppf tr)
    s.sm_tracks;
  pp_critical_path ppf s;
  pp_profiles ppf s.sm_profiles;
  (match s.sm_counts with
  | [] -> ()
  | cs ->
    Format.fprintf ppf "@.%-24s %8s@." "event" "count";
    List.iter (fun (n, c) -> Format.fprintf ppf "%-24s %8d@." n c) cs);
  if utilization then
    match s.sm_machine with
    | Some m -> pp_utilization ppf m
    | None ->
      Format.fprintf ppf
        "@.no machine timeline in this trace (simulate with --trace)@."

let pct b a =
  if b = 0. then if a = 0. then 0. else infinity
  else 100. *. ((a -. b) /. b)

let pp_diff ppf d =
  Format.fprintf ppf "before: %s@.after:  %s@."
    (if d.df_label_b = "" then "(unlabelled)" else d.df_label_b)
    (if d.df_label_a = "" then "(unlabelled)" else d.df_label_a);
  (match
     List.filter
       (fun p -> p.pd_before <> None || p.pd_after <> None)
       d.df_profiles
   with
  | [] -> ()
  | ps ->
    Format.fprintf ppf "@.%-22s %12s %12s %9s %12s %12s@." "propagator"
      "runs (b)" "runs (a)" "delta%" "time_ms (b)" "time_ms (a)";
    List.iter
      (fun p ->
        let rb = match p.pd_before with Some p -> p.a_runs | None -> 0 in
        let ra = match p.pd_after with Some p -> p.a_runs | None -> 0 in
        let tb = match p.pd_before with Some p -> p.a_time_ms | None -> 0. in
        let ta = match p.pd_after with Some p -> p.a_time_ms | None -> 0. in
        Format.fprintf ppf "%-22s %12d %12d %+8.1f%% %12.2f %12.2f@."
          p.pd_name rb ra
          (pct (float_of_int rb) (float_of_int ra))
          tb ta)
      ps);
  (match List.filter (fun c -> c.cd_before <> c.cd_after) d.df_counts with
  | [] -> ()
  | cs ->
    Format.fprintf ppf "@.%-24s %10s %10s %9s@." "event" "before" "after"
      "delta%";
    List.iter
      (fun c ->
        Format.fprintf ppf "%-24s %10d %10d %+8.1f%%@." c.cd_name c.cd_before
          c.cd_after
          (pct (float_of_int c.cd_before) (float_of_int c.cd_after)))
      cs);
  let changed =
    List.filter
      (fun sd ->
        sd.sd_count_b <> sd.sd_count_a
        || Float.abs (sd.sd_total_a -. sd.sd_total_b) >= 1.)
      d.df_spans
  in
  (match changed with
  | [] -> ()
  | sds ->
    Format.fprintf ppf "@.%-44s %7s %7s %12s %12s@." "span (track/name)"
      "cnt (b)" "cnt (a)" "ms (b)" "ms (a)";
    List.iter
      (fun sd ->
        let lbl, name = sd.sd_key in
        Format.fprintf ppf "%-44s %7d %7d %12.2f %12.2f@."
          (lbl ^ "/" ^ name) sd.sd_count_b sd.sd_count_a
          (sd.sd_total_b /. 1000.) (sd.sd_total_a /. 1000.))
      sds);
  let names side = List.map (fun (l, n) -> l ^ "/" ^ n) side in
  (match d.df_new with
  | [] -> ()
  | l -> Format.fprintf ppf "@.new spans: %s@." (String.concat ", " (names l)));
  match d.df_gone with
  | [] -> ()
  | l -> Format.fprintf ppf "vanished spans: %s@." (String.concat ", " (names l))
