(* Minimal JSON: serialization for the sinks, parsing for validation
   and trace analytics.  Lives in its own compilation unit so both the
   emit side ([Obs]) and the read side ([Analyze]) can depend on it
   without a module cycle; users see it as [Obs.Json]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal form that parses back to exactly the same float, so
   [parse (to_string t) = Ok t] holds for every finite number. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.is_finite f then begin
    let compact = Printf.sprintf "%.6g" f in
    if float_of_string compact = f then compact
    else
      let wide = Printf.sprintf "%.15g" f in
      if float_of_string wide = f then wide else Printf.sprintf "%.17g" f
  end
  else "0"

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> float_str f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr vs -> "[" ^ String.concat ", " (List.map to_string vs) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ to_string v) fields)
    ^ "}"

exception Parse_error of string

(* Recursive-descent parser, sufficient for the files this library
   writes (and for smoke-testing arbitrary trace files). *)
let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then error "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then error "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> error "bad \\u escape"
           in
           (* encode the BMP codepoint as UTF-8 *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> error (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let sub = String.sub s start (!pos - start) in
    match float_of_string_opt sub with
    | Some f -> Num f
    | None -> error ("bad number " ^ sub)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg
