(** Line-delimited JSON wire format for [eitc serve].

    One request object per input line, one response object per output
    line, always in admission order of completion (not submission).

    Request fields: ["id"] (string; defaults to the line number),
    exactly one workload key — ["kernel"] (built-in name), ["xml"]
    (inline exported graph) or ["xml_file"] (path) — and optional
    ["slots"], ["arch"] (preset name), ["budget_ms"], ["deadline_ms"],
    ["parallel"], ["retries"].

    Response fields: ["id"], ["status"] (see
    {!Service.status_string}), ["code"] (see {!Service.exit_code});
    for solved requests ["engine"], ["makespan"] (when a schedule
    exists), ["nodes"], ["failures"], ["propagations"], ["crashes"],
    ["solve_ms"], ["validate_ms"]; for wedged / invalid ones
    ["error"]; always ["attempts"], ["retries"], ["wait_ms"],
    ["total_ms"], ["worker"].

    A control line [{"stats": true}] (optional ["id"]) is answered in
    place with one {!stats_line} — live health plus latency quantiles
    — without occupying a worker.

    A line that fails to parse is answered with {!error_line} — the
    daemon never exits on bad input. *)

val request_of_json :
  ?default_id:string -> Obs.Json.t -> (Service.request, string) result

val request_of_line :
  ?default_id:string -> string -> (Service.request, string) result

type parsed =
  | Request of Service.request
  | Stats of string  (** the control line's id *)

val parse_line : ?default_id:string -> string -> (parsed, string) result
(** {!request_of_line} extended with the [stats] control form. *)

val response_json : Service.response -> Obs.Json.t
val response_line : Service.response -> string

val stats_line : id:string -> Service.health -> string
(** One JSON line: every {!Service.health} counter, the
    [total_ms] / [queue_wait_ms] / [solve_ms] latency distributions
    (count, mean, min, max, p50..p999) and the rolling [slo] object —
    the wire answer to a [{"stats": true}] control line. *)

val log_line : ?ts:float -> Service.response -> string
(** The structured per-request log record: {!response_json} prefixed
    with a ["ts_unix"] wall-clock field ([ts] defaults to now). *)

val error_line : id:string -> string -> string
(** A synthetic ["error"]/code-7 response for input that never became
    a request (unparseable JSON, missing workload). *)
