module J = Obs.Json

let ( let* ) = Result.bind

let get_str name j =
  match J.member name j with
  | None | Some J.Null -> Ok None
  | Some (J.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "%S must be a string" name)

let get_num name j =
  match J.member name j with
  | None | Some J.Null -> Ok None
  | Some (J.Num f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "%S must be a number" name)

let request_of_json ?default_id j =
  match j with
  | J.Obj _ ->
    let* id = get_str "id" j in
    let* kernel = get_str "kernel" j in
    let* xml = get_str "xml" j in
    let* xml_file = get_str "xml_file" j in
    let* workload =
      match (kernel, xml, xml_file) with
      | Some k, None, None -> Ok (Service.Kernel k)
      | None, Some x, None -> Ok (Service.Xml_text x)
      | None, None, Some p -> Ok (Service.Xml_file p)
      | None, None, None ->
        Error "missing workload: provide one of \"kernel\", \"xml\", \"xml_file\""
      | _ -> Error "exactly one of \"kernel\", \"xml\", \"xml_file\" allowed"
    in
    let* slots = get_num "slots" j in
    let* preset = get_str "arch" j in
    let* budget_ms = get_num "budget_ms" j in
    let* deadline_ms = get_num "deadline_ms" j in
    let* parallel = get_num "parallel" j in
    let* retries = get_num "retries" j in
    let id =
      match (id, default_id) with
      | Some i, _ -> i
      | None, Some d -> d
      | None, None -> "?"
    in
    Ok
      {
        Service.id;
        workload;
        slots = Option.map int_of_float slots;
        preset;
        budget_ms;
        deadline_ms;
        parallel = (match parallel with Some p -> int_of_float p | None -> 0);
        retries = Option.map int_of_float retries;
      }
  | _ -> Error "request must be a JSON object"

let request_of_line ?default_id line =
  match J.parse line with
  | Error e -> Error ("json: " ^ e)
  | Ok j -> request_of_json ?default_id j

(* A control line is distinguished by ["stats": true]; everything else
   is a solve request, so old clients keep working unchanged. *)
type parsed = Request of Service.request | Stats of string

let parse_line ?default_id line =
  match J.parse line with
  | Error e -> Error ("json: " ^ e)
  | Ok j -> (
    match J.member "stats" j with
    | Some (J.Bool true) ->
      let* id = get_str "id" j in
      let id =
        match (id, default_id) with
        | Some i, _ -> i
        | None, Some d -> d
        | None, None -> "stats"
      in
      Ok (Stats id)
    | _ -> Result.map (fun r -> Request r) (request_of_json ?default_id j))

let num i = J.Num (float_of_int i)
let ms x = J.Num (Float.round (x *. 1000.) /. 1000.)

let response_json (r : Service.response) =
  let head =
    [
      ("id", J.Str r.Service.r_id);
      ("status", J.Str (Service.status_string r));
      ("code", num (Service.exit_code r));
    ]
  in
  let body =
    match r.Service.reply with
    | Service.Solved s ->
      [
        ( "engine",
          J.Str
            (match s.Service.eng with
            | Sched.Solve.Cp -> "cp"
            | Sched.Solve.Fallback -> "fallback") );
      ]
      @ (match s.Service.makespan with
        | Some m -> [ ("makespan", num m) ]
        | None -> [])
      @ [
          ("cached", J.Bool s.Service.cached);
          ("nodes", num s.Service.nodes);
          ("failures", num s.Service.failures);
          ("propagations", num s.Service.propagations);
          ("crashes", num s.Service.crashes);
          ("solve_ms", ms s.Service.solve_ms);
          ("validate_ms", ms s.Service.validate_ms);
        ]
    | Service.Wedged m | Service.Invalid m -> [ ("error", J.Str m) ]
    | Service.Overloaded | Service.Expired -> []
  in
  let tail =
    [
      ("attempts", num r.Service.attempts);
      ("retries", num (max 0 (r.Service.attempts - 1)));
      ("wait_ms", ms r.Service.wait_ms);
      ("total_ms", ms r.Service.total_ms);
      ("worker", num r.Service.worker);
    ]
  in
  J.Obj (head @ body @ tail)

let response_line r = J.to_string (response_json r)

let hstats_json (h : Obs.Metrics.hstats) =
  J.Obj
    [
      ("count", num h.Obs.Metrics.count);
      ("mean", ms h.Obs.Metrics.mean);
      ("min", ms h.Obs.Metrics.vmin);
      ("max", ms h.Obs.Metrics.vmax);
      ("p50", ms h.Obs.Metrics.p50);
      ("p90", ms h.Obs.Metrics.p90);
      ("p95", ms h.Obs.Metrics.p95);
      ("p99", ms h.Obs.Metrics.p99);
      ("p999", ms h.Obs.Metrics.p999);
    ]

let slo_json (s : Obs.Metrics.slo_stats) =
  J.Obj
    [
      ("window", num s.Obs.Metrics.window);
      ("seen", num s.Obs.Metrics.seen);
      ("total", num s.Obs.Metrics.total);
      ("ok", num s.Obs.Metrics.ok);
      ("deadline_met", num s.Obs.Metrics.met);
      ("error_rate", J.Num s.Obs.Metrics.error_rate);
      ("deadline_hit_rate", J.Num s.Obs.Metrics.deadline_hit_rate);
    ]

let stats_json ~id (h : Service.health) =
  J.Obj
    [
      ("id", J.Str id);
      ("stats", J.Bool true);
      ("alive", num h.Service.alive);
      ("queue_depth", num h.Service.queue_depth);
      ("revived", num h.Service.revived);
      ("zombies", num h.Service.zombies);
      ("submitted", num h.Service.submitted);
      ("completed", num h.Service.completed);
      ("shed", num h.Service.shed);
      ("expired", num h.Service.expired);
      ("wedged", num h.Service.wedged);
      ("retries", num h.Service.retries);
      ("fallbacks", num h.Service.fallbacks);
      ("invalid", num h.Service.invalid);
      ("cache_hits", num h.Service.cache_hits);
      ("cache_misses", num h.Service.cache_misses);
      ("cache_evictions", num h.Service.cache_evictions);
      ("flight_kept", num h.Service.flight_kept);
      ("flight_dropped", num h.Service.flight_dropped);
      ("flight_dumped", num h.Service.flight_dumped);
      ("total_ms", hstats_json h.Service.lat_total);
      ("queue_wait_ms", hstats_json h.Service.lat_queue);
      ("solve_ms", hstats_json h.Service.lat_solve);
      ("slo", slo_json h.Service.slo);
    ]

let stats_line ~id h = J.to_string (stats_json ~id h)

let log_line ?ts r =
  let ts = match ts with Some t -> t | None -> Unix.gettimeofday () in
  match response_json r with
  | J.Obj fields -> J.to_string (J.Obj (("ts_unix", J.Num ts) :: fields))
  | j -> J.to_string j

let error_line ~id msg =
  J.to_string
    (J.Obj
       [
         ("id", J.Str id);
         ("status", J.Str "error");
         ("code", num 7);
         ("error", J.Str msg);
       ])
