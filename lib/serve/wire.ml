module J = Obs.Json

let ( let* ) = Result.bind

let get_str name j =
  match J.member name j with
  | None | Some J.Null -> Ok None
  | Some (J.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "%S must be a string" name)

let get_num name j =
  match J.member name j with
  | None | Some J.Null -> Ok None
  | Some (J.Num f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "%S must be a number" name)

let request_of_json ?default_id j =
  match j with
  | J.Obj _ ->
    let* id = get_str "id" j in
    let* kernel = get_str "kernel" j in
    let* xml = get_str "xml" j in
    let* xml_file = get_str "xml_file" j in
    let* workload =
      match (kernel, xml, xml_file) with
      | Some k, None, None -> Ok (Service.Kernel k)
      | None, Some x, None -> Ok (Service.Xml_text x)
      | None, None, Some p -> Ok (Service.Xml_file p)
      | None, None, None ->
        Error "missing workload: provide one of \"kernel\", \"xml\", \"xml_file\""
      | _ -> Error "exactly one of \"kernel\", \"xml\", \"xml_file\" allowed"
    in
    let* slots = get_num "slots" j in
    let* preset = get_str "arch" j in
    let* budget_ms = get_num "budget_ms" j in
    let* deadline_ms = get_num "deadline_ms" j in
    let* parallel = get_num "parallel" j in
    let* retries = get_num "retries" j in
    let id =
      match (id, default_id) with
      | Some i, _ -> i
      | None, Some d -> d
      | None, None -> "?"
    in
    Ok
      {
        Service.id;
        workload;
        slots = Option.map int_of_float slots;
        preset;
        budget_ms;
        deadline_ms;
        parallel = (match parallel with Some p -> int_of_float p | None -> 0);
        retries = Option.map int_of_float retries;
      }
  | _ -> Error "request must be a JSON object"

let request_of_line ?default_id line =
  match J.parse line with
  | Error e -> Error ("json: " ^ e)
  | Ok j -> request_of_json ?default_id j

let num i = J.Num (float_of_int i)
let ms x = J.Num (Float.round (x *. 1000.) /. 1000.)

let response_json (r : Service.response) =
  let head =
    [
      ("id", J.Str r.Service.r_id);
      ("status", J.Str (Service.status_string r));
      ("code", num (Service.exit_code r));
    ]
  in
  let body =
    match r.Service.reply with
    | Service.Solved s ->
      [
        ( "engine",
          J.Str
            (match s.Service.eng with
            | Sched.Solve.Cp -> "cp"
            | Sched.Solve.Fallback -> "fallback") );
      ]
      @ (match s.Service.makespan with
        | Some m -> [ ("makespan", num m) ]
        | None -> [])
      @ [
          ("cached", J.Bool s.Service.cached);
          ("nodes", num s.Service.nodes);
          ("failures", num s.Service.failures);
          ("propagations", num s.Service.propagations);
          ("crashes", num s.Service.crashes);
          ("solve_ms", ms s.Service.solve_ms);
        ]
    | Service.Wedged m | Service.Invalid m -> [ ("error", J.Str m) ]
    | Service.Overloaded | Service.Expired -> []
  in
  let tail =
    [
      ("attempts", num r.Service.attempts);
      ("retries", num (max 0 (r.Service.attempts - 1)));
      ("wait_ms", ms r.Service.wait_ms);
      ("total_ms", ms r.Service.total_ms);
      ("worker", num r.Service.worker);
    ]
  in
  J.Obj (head @ body @ tail)

let response_line r = J.to_string (response_json r)

let error_line ~id msg =
  J.to_string
    (J.Obj
       [
         ("id", J.Str id);
         ("status", J.Str "error");
         ("code", num 7);
         ("error", J.Str msg);
       ])
