type 'a worker = {
  w_slot : int;
  w_gen : int;
  w_cell : 'a option Atomic.t;
  w_finished : bool Atomic.t;
  mutable w_dom : unit Domain.t option;
  mutable w_joined : bool;
}

type 'a t = {
  size : int;
  body : slot:int -> alive:(unit -> bool) -> cell:'a option Atomic.t -> unit;
  gens : int Atomic.t array; (* current generation per slot *)
  mutable current : 'a worker array;
  mutable zombies : 'a worker list;
  n_revived : int Atomic.t;
  m : Mutex.t;
}

(* The worker wrapper: isolation means a crashing body never takes the
   pool down — it just marks the worker finished (and dead, if it was
   still the current generation). *)
let spawn t slot gen =
  let w =
    {
      w_slot = slot;
      w_gen = gen;
      w_cell = Atomic.make None;
      w_finished = Atomic.make false;
      w_dom = None;
      w_joined = false;
    }
  in
  let alive () = Atomic.get t.gens.(slot) = gen in
  let dom =
    Domain.spawn (fun () ->
        (try t.body ~slot ~alive ~cell:w.w_cell with _ -> ());
        Atomic.set w.w_finished true)
  in
  w.w_dom <- Some dom;
  w

let create ~size body =
  if size < 1 then invalid_arg "Serve.Pool.create: size < 1";
  let t =
    {
      size;
      body;
      gens = Array.init size (fun _ -> Atomic.make 0);
      current = [||];
      zombies = [];
      n_revived = Atomic.make 0;
      m = Mutex.create ();
    }
  in
  t.current <- Array.init size (fun slot -> spawn t slot 0);
  t

let size t = t.size

let cells t =
  Mutex.lock t.m;
  let cs = Array.map (fun w -> w.w_cell) t.current in
  Mutex.unlock t.m;
  cs

let revive t slot =
  if slot < 0 || slot >= t.size then invalid_arg "Serve.Pool.revive: bad slot";
  Mutex.lock t.m;
  let old = t.current.(slot) in
  let gen = old.w_gen + 1 in
  (* Flipping the generation is what tells the old worker to exit at
     its next safe point; it happens before the replacement spawns so
     the two never both believe they own the slot. *)
  Atomic.set t.gens.(slot) gen;
  t.zombies <- old :: t.zombies;
  t.current.(slot) <- spawn t slot gen;
  Atomic.incr t.n_revived;
  Mutex.unlock t.m

let alive_count t =
  Mutex.lock t.m;
  let n =
    Array.fold_left
      (fun acc w -> if Atomic.get w.w_finished then acc else acc + 1)
      0 t.current
  in
  Mutex.unlock t.m;
  n

let revived t = Atomic.get t.n_revived

let zombie_count t =
  Mutex.lock t.m;
  (* only zombies still awaiting their join count as outstanding *)
  let n = List.length (List.filter (fun w -> not w.w_joined) t.zombies) in
  Mutex.unlock t.m;
  n

(* Join loop: pick an unjoined worker under the lock, join it outside
   (Domain.join blocks), repeat until none are left.  Revivals during
   the loop add unjoined workers, which the next iteration picks up. *)
let join t =
  let rec loop () =
    Mutex.lock t.m;
    let next =
      Array.fold_left
        (fun acc w -> match acc with Some _ -> acc | None -> if w.w_joined then None else Some w)
        None t.current
    in
    (match next with Some w -> w.w_joined <- true | None -> ());
    Mutex.unlock t.m;
    match next with
    | Some w ->
      (match w.w_dom with Some d -> Domain.join d | None -> ());
      loop ()
    | None -> ()
  in
  loop ()

let join_zombies t =
  let rec loop () =
    Mutex.lock t.m;
    let next = List.find_opt (fun w -> not w.w_joined) t.zombies in
    (match next with Some w -> w.w_joined <- true | None -> ());
    Mutex.unlock t.m;
    match next with
    | Some w ->
      (match w.w_dom with Some d -> Domain.join d | None -> ());
      loop ()
    | None -> ()
  in
  loop ()
