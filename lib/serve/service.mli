(** The batch scheduling service: a long-lived, resilient front end to
    the solver stack.

    Requests (a named built-in kernel or an imported XML graph, plus
    per-request architecture / budget / deadline options) are admitted
    through a bounded queue ({!Serve.Queue} — overload is shed as a
    typed {!Overloaded} reply, never queued unboundedly), executed on a
    fixed pool of worker domains ({!Serve.Pool}) that reuse
    {!Sched.Solve} / {!Fd.Portfolio}, and answered with a typed
    {!response}.  The contract: {e every} submitted request gets
    exactly one response, in bounded time, and no request can take the
    service (or another request) down.

    Resilience machinery, per request:

    - an absolute deadline covering queue wait {e and} solving; a
      request that expires while still queued is failed fast by the
      watchdog without occupying a worker;
    - a cancellation switch ({!Fd.Deadline.switch}) threaded into the
      solver's cooperative polls, doubling as a progress heartbeat;
    - retry with jittered exponential backoff for [Crashed] attempts
      (bounded by the attempt budget {e and} the remaining deadline);
    - a final heuristic-fallback rescue when no attempt produced a
      schedule (unless the instance is proven infeasible);
    - a watchdog domain that declares a worker {e wedged} when its
      in-flight request makes no poll progress within the grace window,
      answers the request ({!Wedged}), and revives the slot with a
      fresh domain (the wedged one is quarantined as a zombie until it
      escapes on its own).

    Observability: admissions, sheds, expiries, retries and wedges are
    emitted as [Obs] instants (cat ["serve"]) tagged with the request
    id; each execution is wrapped in a [request:<id>] span on the
    worker's own track (tid [1000 + slot]). *)

type workload =
  | Kernel of string    (** a built-in kernel, e.g. ["qrd"] *)
  | Xml_text of string  (** an exported XML graph, inline *)
  | Xml_file of string  (** an exported XML graph, by path *)

type request = {
  id : string;
  workload : workload;
  slots : int option;        (** restrict memory slots *)
  preset : string option;    (** architecture preset name *)
  budget_ms : float option;  (** per-attempt solver budget *)
  deadline_ms : float option;
      (** end-to-end deadline, measured from submission — queue wait
          counts against it *)
  parallel : int;            (** portfolio width; 0/1 = sequential *)
  retries : int option;      (** max retries for crashed attempts *)
}

val request :
  ?slots:int ->
  ?preset:string ->
  ?budget_ms:float ->
  ?deadline_ms:float ->
  ?parallel:int ->
  ?retries:int ->
  id:string ->
  workload ->
  request

type solved = {
  st : Sched.Solve.status;
  eng : Sched.Solve.engine;
  makespan : int option;
  nodes : int;
  failures : int;
  propagations : int;
  solve_ms : float;   (** wall time spent solving (all attempts) *)
  validate_ms : float;(** wall time in the independent validator (final
                          outcome, incl. cache-hit re-validation) *)
  crashes : int;      (** isolated worker crashes across attempts *)
  cached : bool;      (** replayed from the service's solution cache:
                          no search ran, stats are all-zero *)
}

type reply =
  | Solved of solved
  | Overloaded        (** shed at admission: queue full or closed *)
  | Expired           (** deadline passed while still queued *)
  | Wedged of string  (** watchdog: no solver progress within grace *)
  | Invalid of string (** malformed request: XML parse error, unknown
                          kernel / preset — the request's fault,
                          reported per-request, never fatal *)

type response = {
  r_id : string;
  reply : reply;
  attempts : int;   (** solve attempts executed (0 when never run) *)
  wait_ms : float;  (** admission -> pickup (or terminal verdict) *)
  total_ms : float; (** admission -> response *)
  worker : int;     (** pool slot that ran it; [-1] when none did *)
}

type config = {
  pool : int;               (** worker domains (default 4) *)
  queue : int;              (** admission queue capacity (default 64) *)
  default_budget_ms : float;(** per-attempt budget when the request
                                carries none (default 10s) *)
  grace_ms : float;         (** watchdog: max ms without poll progress
                                before a worker counts as wedged
                                (default 2s) *)
  watchdog_tick_ms : float; (** watchdog scan period (default 25ms) *)
  max_retries : int;        (** default retry allowance (default 1) *)
  backoff_base_ms : float;  (** first backoff step (default 25ms);
                                doubles per retry, plus jitter *)
  seed : int;               (** jitter RNG seed (deterministic per
                                request sequence number) *)
  chaos : Fd.Chaos.t option;(** fault injection for every attempt *)
  cache_capacity : int;     (** shared solution-cache entries; [0]
                                (default) disables the cache entirely,
                                keeping served solves byte-identical to
                                direct {!Sched.Solve.run} calls *)
  warm_start : bool;        (** seed sequential solves with the best
                                validated makespan previously seen for
                                the same graph shape (default off);
                                sound — see {!Sched.Solve.run} *)
  metrics : Obs.Metrics.registry option;
      (** the live-metrics registry the service feeds; [None] (default)
          creates a private {e disabled} registry — every record is one
          atomic-load no-op, so an embedded service pays nothing and
          {!health}'s latency/SLO aggregates read as zero.  Pass an
          enabled registry ([Obs.Metrics.create ()]) to turn the
          aggregates on, as [eitc serve] and [bench load] do. *)
  trace_sample : int;
      (** head sampling for [Obs] traces: keep the full event trace of
          1-in-N requests (by admission sequence) and suppress the
          rest; [<= 1] (default [0]) traces every request.  Live
          metrics are unaffected — they aggregate all requests.
          Superseded by the flight recorder: with [flight_dir] set,
          every request emits (into the ring) and retention is decided
          at completion instead — note a [--trace] file will then
          contain all requests. *)
  flight_dir : string option;
      (** tail-based flight recorder: when set, every request records
          its full event stream into a preallocated per-worker ring
          ({!Obs.Flight}), and the completion path keeps anomalies
          (error / expired / wedged / crashed / retried), anything at
          or beyond the live p99 (once 64 requests have completed),
          and a 1-in-[tail_keep] slice of healthy traffic — each as a
          self-contained JSONL black box under this directory, read
          back by [eitc postmortem].  [None] (default) disables
          recording entirely. *)
  flight_buf : int;
      (** per-worker ring capacity in events (default 4096); a dump
          holds at most this many, cut mid-span if the request
          overflowed it. *)
  tail_keep : int;
      (** keep 1-in-N {e healthy} completions as a baseline slice
          (deterministic, by admission sequence); [0] (default) keeps
          only anomalies and tail-latency outliers. *)
}

val default_config : config

type t
type ticket

val create : ?config:config -> unit -> t
(** Compiles every built-in kernel up front and spawns the pool and
    the watchdog. *)

val submit : ?on_complete:(response -> unit) -> t -> request -> ticket
(** Never blocks.  Overload answers the ticket immediately with
    {!Overloaded}.  [on_complete] fires exactly once, on whichever
    domain resolves the request. *)

val await : ticket -> response
(** Block until the response is available. *)

val peek : ticket -> response option

type health = {
  alive : int;       (** live current-generation workers *)
  queue_depth : int;
  revived : int;     (** worker revivals performed *)
  zombies : int;     (** superseded workers not yet joined *)
  submitted : int;
  completed : int;   (** responses delivered (all kinds) *)
  shed : int;
  expired : int;
  wedged : int;
  retries : int;     (** retry attempts performed *)
  fallbacks : int;   (** responses rescued by the heuristic fallback *)
  invalid : int;
  cache_hits : int;      (** solution-cache hits (0 when disabled) *)
  cache_misses : int;
  cache_evictions : int;
  flight_kept : int;     (** completions whose trace was retained
                             (0 when the flight recorder is off);
                             [flight_kept + flight_dropped = completed] *)
  flight_dropped : int;  (** completions reset without serialization *)
  flight_dumped : int;   (** black-box files written under [flight_dir] *)
  lat_total : Obs.Metrics.hstats;
      (** end-to-end latency distribution (admission -> response, all
          reply kinds) — quantiles carry the histogram's relative-error
          bound *)
  lat_queue : Obs.Metrics.hstats;  (** admission -> pickup *)
  lat_solve : Obs.Metrics.hstats;  (** solver wall time (solved only) *)
  slo : Obs.Metrics.slo_stats;
      (** rolling-window error rate and deadline hit rate *)
}

val health : t -> health

val metrics : t -> Obs.Metrics.registry
(** The registry this service feeds ([config.metrics], or the private
    one created at {!create}) — for {!Obs.Metrics.exporter_start},
    snapshots, or the [bench load] cross-check. *)

val flight_dump_all : t -> reason:string -> string option
(** The daemon-fatal black box: dump every live flight ring (plus the
    service's counters and config) as one file under [flight_dir] —
    what [eitc serve] writes when an exception is about to take the
    process down.  [None] when the flight recorder is off or the write
    failed. *)

val shutdown : t -> unit
(** Graceful: close admission, drain queued requests, join workers
    (the watchdog keeps running until they are done, so a wedge during
    drain is still caught), then the watchdog and any zombies.
    Idempotent. *)

val status_string : response -> string
(** ["optimal"], ["feasible_timeout"], ["infeasible"], ["crashed"],
    ["rejected_overload"], ["expired"], ["wedged"] or ["error"]. *)

val exit_code : response -> int
(** Per-response exit-code contract, extending {!Sched.Solve.exit_code}:
    [0] optimal / CP-feasible, [2] fallback schedule, [3] infeasible,
    [4] crashed or wedged, [5] shed on overload, [6] expired in queue,
    [7] invalid request. *)

val pp_reply : Format.formatter -> reply -> unit
