module Vecsched = Vecsched_core.Vecsched

type workload = Kernel of string | Xml_text of string | Xml_file of string

type request = {
  id : string;
  workload : workload;
  slots : int option;
  preset : string option;
  budget_ms : float option;
  deadline_ms : float option;
  parallel : int;
  retries : int option;
}

let request ?slots ?preset ?budget_ms ?deadline_ms ?(parallel = 0) ?retries ~id
    workload =
  { id; workload; slots; preset; budget_ms; deadline_ms; parallel; retries }

type solved = {
  st : Sched.Solve.status;
  eng : Sched.Solve.engine;
  makespan : int option;
  nodes : int;
  failures : int;
  propagations : int;
  solve_ms : float;
  validate_ms : float;
  crashes : int;
  cached : bool;
}

type reply =
  | Solved of solved
  | Overloaded
  | Expired
  | Wedged of string
  | Invalid of string

type response = {
  r_id : string;
  reply : reply;
  attempts : int;
  wait_ms : float;
  total_ms : float;
  worker : int;
}

type config = {
  pool : int;
  queue : int;
  default_budget_ms : float;
  grace_ms : float;
  watchdog_tick_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  seed : int;
  chaos : Fd.Chaos.t option;
  cache_capacity : int;
  warm_start : bool;
  metrics : Obs.Metrics.registry option;
  trace_sample : int;
  flight_dir : string option;
  flight_buf : int;
  tail_keep : int;
}

let default_config =
  {
    pool = 4;
    queue = 64;
    default_budget_ms = 10_000.;
    grace_ms = 2_000.;
    watchdog_tick_ms = 25.;
    max_retries = 1;
    backoff_base_ms = 25.;
    seed = 0;
    chaos = None;
    cache_capacity = 0;
    warm_start = false;
    metrics = None;
    trace_sample = 0;
    flight_dir = None;
    flight_buf = 4096;
    tail_keep = 0;
  }

(* One-shot response cell.  [fulfil] is idempotent and returns whether
   this call won — the worker and the watchdog can race to answer the
   same request (a "wedged" verdict vs. a slow-but-live solve) and
   exactly one of them delivers. *)
type ticket = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable tr : response option;
  mutable claimed : bool;
      (* two-phase completion: the winner is decided by [claim] before
         any completion side effect (metrics, flight-ring settle) runs,
         and the response is only published afterwards — so once
         [await] returns, every counter the completion touched has
         already been bumped. *)
  mutable cb : (response -> unit) option;
}

let claim tk =
  Mutex.lock tk.tm;
  let won = (not tk.claimed) && tk.tr = None in
  if won then tk.claimed <- true;
  Mutex.unlock tk.tm;
  won

let fulfil tk resp =
  Mutex.lock tk.tm;
  let won = tk.tr = None in
  let cb = if won then tk.cb else None in
  if won then begin
    tk.tr <- Some resp;
    tk.cb <- None;
    Condition.broadcast tk.tc
  end;
  Mutex.unlock tk.tm;
  (* The callback runs outside the ticket lock: it may take other
     locks (the CLI's stdout mutex, a test's aggregation lock). *)
  (match cb with Some f -> ( try f resp with _ -> ()) | None -> ());
  won

let await tk =
  Mutex.lock tk.tm;
  while tk.tr = None do
    Condition.wait tk.tc tk.tm
  done;
  let r = Option.get tk.tr in
  Mutex.unlock tk.tm;
  r

let peek tk =
  Mutex.lock tk.tm;
  let r = tk.tr in
  Mutex.unlock tk.tm;
  r

type job = {
  jr : request;
  seq : int; (* admission index: keys the chaos site ids and jitter *)
  dl : Fd.Deadline.t; (* absolute end-to-end deadline, switch attached *)
  sw : Fd.Deadline.switch;
  t_admit : float;
  tk : ticket;
  sampled : bool;
      (* head sampling: whether this request's trace events are kept
         ([trace_sample <= 1] keeps everything) *)
}

type health = {
  alive : int;
  queue_depth : int;
  revived : int;
  zombies : int;
  submitted : int;
  completed : int;
  shed : int;
  expired : int;
  wedged : int;
  retries : int;
  fallbacks : int;
  invalid : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  flight_kept : int;
  flight_dropped : int;
  flight_dumped : int;
  lat_total : Obs.Metrics.hstats;
  lat_queue : Obs.Metrics.hstats;
  lat_solve : Obs.Metrics.hstats;
  slo : Obs.Metrics.slo_stats;
}

type counters = {
  c_submitted : int Atomic.t;
  c_completed : int Atomic.t;
  c_shed : int Atomic.t;
  c_expired : int Atomic.t;
  c_wedged : int Atomic.t;
  c_retries : int Atomic.t;
  c_fallbacks : int Atomic.t;
  c_invalid : int Atomic.t;
}

(* Live-metrics instruments, interned once at [create] so the
   per-request path never takes the registry lookup lock. *)
type instruments = {
  reg : Obs.Metrics.registry;
  h_queue : Obs.Metrics.histogram;
  h_solve : Obs.Metrics.histogram;
  h_validate : Obs.Metrics.histogram;
  h_total : Obs.Metrics.histogram;
  h_attempts : Obs.Metrics.histogram;
  s_slo : Obs.Metrics.slo;
  g_depth : Obs.Metrics.gauge;
}

let make_instruments reg =
  {
    reg;
    h_queue = Obs.Metrics.histogram reg "serve.queue_wait_ms";
    h_solve = Obs.Metrics.histogram reg "serve.solve_ms";
    h_validate = Obs.Metrics.histogram reg "serve.validate_ms";
    h_total = Obs.Metrics.histogram reg "serve.total_ms";
    h_attempts = Obs.Metrics.histogram reg "serve.attempts";
    s_slo = Obs.Metrics.slo reg "serve.slo";
    g_depth = Obs.Metrics.gauge reg "serve.queue_depth";
  }

(* What a worker (and the watchdog) needs: built before the pool so the
   body closures never reach through the not-yet-constructed handle. *)
type ctx = {
  cfg : config;
  kernels : (string * Eit_dsl.Ir.t) list;
  cnt : counters;
  q : job Queue.t;
  cache : Cache.t option;
      (* one shared solution cache for the whole service (the Cache
         module locks internally); [None] when [cache_capacity = 0] *)
  mx : instruments;
  flight : Obs.Flight.t option;
      (* tail retention: present iff [flight_dir] is set — every
         request records into a per-worker ring and the completion
         path decides keep vs. drop ({!retention_reason}) *)
}

type t = {
  ctx : ctx;
  pool : job Pool.t;
  seq : int Atomic.t;
  wd_stop : bool Atomic.t;
  wd : unit Domain.t;
  fl_h : Obs.handle option; (* the flight recorder's sink registration *)
  shut_m : Mutex.t;
  mutable shut : bool;
}

(* ------------------------------------------------------------------ *)
(* Workload resolution: every way a request can be malformed — unknown
   kernel or preset, XML that does not parse — becomes a typed
   per-request [Invalid], never an escaping exception. *)

let kernel_names =
  [ "matmul"; "qrd"; "qrd-sorted"; "arf"; "fir"; "corr"; "detect" ]

(* Compiled (merged) graphs for every built-in kernel, built eagerly at
   [create]: worker domains must never race a lazy cell. *)
let compile_kernels () =
  let merged g = (Vecsched.compile g).Vecsched.ir in
  [
    ("matmul", merged (Apps.Matmul.graph (Apps.Matmul.build ())));
    ("qrd", merged (Apps.Qrd.graph (Apps.Qrd.build ())));
    ("qrd-sorted", merged (Apps.Qrd.graph (Apps.Qrd.build ~sorted:true ())));
    ("arf", merged (Apps.Arf.graph (Apps.Arf.build ())));
    ("fir", merged (Apps.Fir.graph (Apps.Fir.build ())));
    ("corr", merged (Apps.Corr.graph (Apps.Corr.build ())));
    ("detect", merged (Apps.Detect.graph (Apps.Detect.build ())));
  ]

let resolve_arch req =
  let preset =
    match req.preset with
    | None -> Ok Eit.Arch.default
    | Some n -> (
      match List.assoc_opt n Eit.Arch.presets with
      | Some a -> Ok a
      | None ->
        Error
          (Printf.sprintf "unknown arch preset %S (known: %s)" n
             (String.concat ", " (List.map fst Eit.Arch.presets))))
  in
  match (preset, req.slots) with
  | (Error _ as e), _ -> e
  | Ok a, None -> Ok a
  | Ok a, Some n ->
    if n < 1 then Error (Printf.sprintf "slots must be >= 1 (got %d)" n)
    else Ok (Eit.Arch.with_slots a n)

let resolve_graph kernels = function
  | Kernel k -> (
    match List.assoc_opt k kernels with
    | Some g -> Ok g
    | None ->
      Error
        (Printf.sprintf "unknown kernel %S (known: %s)" k
           (String.concat ", " kernel_names)))
  | Xml_text s -> (
    match Vecsched.Xml.parse s with
    | Ok g -> (
      try Ok (Vecsched.compile g).Vecsched.ir
      with e -> Error (Printexc.to_string e))
    | Error e -> Error (Format.asprintf "xml: %a" Vecsched.Xml.pp_error e))
  | Xml_file path -> (
    match Vecsched.Xml.load_file path with
    | Ok g -> (
      try Ok (Vecsched.compile g).Vecsched.ir
      with e -> Error (Printexc.to_string e))
    | Error e -> Error (Format.asprintf "%s: %a" path Vecsched.Xml.pp_error e)
    | exception Sys_error m -> Error m)

(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()
let ms_since t0 = (now () -. t0) *. 1000.

let obs_instant name id =
  if Obs.enabled () then
    Obs.instant ~cat:"serve" ~args:[ ("request_id", Obs.S id) ] name

let status_string r =
  match r.reply with
  | Solved { st = Sched.Solve.Optimal; _ } -> "optimal"
  | Solved { st = Sched.Solve.Feasible_timeout; _ } -> "feasible_timeout"
  | Solved { st = Sched.Solve.Infeasible; _ } -> "infeasible"
  | Solved { st = Sched.Solve.Crashed; _ } -> "crashed"
  | Overloaded -> "rejected_overload"
  | Expired -> "expired"
  | Wedged _ -> "wedged"
  | Invalid _ -> "error"

let exit_code r =
  match r.reply with
  | Solved s -> (
    match (s.st, s.eng, s.makespan) with
    | Sched.Solve.Optimal, _, _ -> 0
    | Sched.Solve.Feasible_timeout, Sched.Solve.Cp, Some _ -> 0
    | Sched.Solve.Feasible_timeout, Sched.Solve.Fallback, Some _ -> 2
    | Sched.Solve.Infeasible, _, _ -> 3
    | _ -> 4)
  | Overloaded -> 5
  | Expired -> 6
  | Wedged _ -> 4
  | Invalid _ -> 7

(* ------------------------------------------------------------------ *)
(* Tail retention: with a flight recorder attached, the completion
   path decides which requests keep their in-ring trace.  Always keep
   anomalies (errors, expiries, wedges, crashes, retried attempts);
   keep healthy requests slower than the live p99 once the latency
   histogram has warmed up; keep a deterministic 1-in-[tail_keep]
   slice of the rest; drop everything else without serializing it. *)

(* Don't trust a p99 computed over a handful of requests. *)
let min_slow_count = 64

let retention_reason ctx (job : job) resp =
  match resp.reply with
  | Overloaded -> None (* shed at admission: nothing ran, nothing recorded *)
  | Expired -> Some "expired"
  | Wedged _ -> Some "wedged"
  | Invalid _ -> Some "error"
  | Solved s ->
    if s.st = Sched.Solve.Crashed then Some "crashed"
    else if resp.attempts > 1 then Some "retried"
    else if s.crashes > 0 then Some "crashed"
    else
      let st = Obs.Metrics.hstats ctx.mx.h_total in
      if
        st.Obs.Metrics.count >= min_slow_count
        && st.Obs.Metrics.p99 > 0.
        && resp.total_ms >= st.Obs.Metrics.p99
      then Some "slow"
      else if ctx.cfg.tail_keep > 0 && job.seq mod ctx.cfg.tail_keep = 0 then
        Some "sampled"
      else None

(* The black box's metadata line: everything needed to reproduce the
   request without the service — status, attempt history, the chaos
   site ids each attempt ran under (chaos_base = seq*8 + k), the
   solver's search stats, and the config the daemon was running. *)
let flight_meta ctx (job : job) resp =
  let module J = Obs.Json in
  let num i = J.Num (float_of_int i) in
  let ms x = J.Num (Float.round (x *. 1000.) /. 1000.) in
  let chaos_sites =
    if Option.is_none ctx.cfg.chaos then []
    else
      [
        ( "chaos_sites",
          J.Arr
            (List.init (max 0 resp.attempts) (fun k ->
                 num ((job.seq * 8) + k + 1))) );
      ]
  in
  let body =
    match resp.reply with
    | Solved s ->
      [
        ( "engine",
          J.Str
            (match s.eng with
            | Sched.Solve.Cp -> "cp"
            | Sched.Solve.Fallback -> "fallback") );
        ("nodes", num s.nodes);
        ("failures", num s.failures);
        ("propagations", num s.propagations);
        ("crashes", num s.crashes);
        ("solve_ms", ms s.solve_ms);
        ("cached", J.Bool s.cached);
      ]
      @ (match s.makespan with Some m -> [ ("makespan", num m) ] | None -> [])
    | Wedged m | Invalid m -> [ ("error", J.Str m) ]
    | Overloaded | Expired -> []
  in
  [
    ("status", J.Str (status_string resp));
    ("code", num (exit_code resp));
    ("seq", num job.seq);
    ("attempts", num resp.attempts);
    ("worker", num resp.worker);
    ("wait_ms", ms resp.wait_ms);
    ("total_ms", ms resp.total_ms);
  ]
  @ chaos_sites @ body
  @ [
      ( "config",
        J.Obj
          [
            ("pool", num ctx.cfg.pool);
            ("queue", num ctx.cfg.queue);
            ("budget_ms", J.Num ctx.cfg.default_budget_ms);
            ("grace_ms", J.Num ctx.cfg.grace_ms);
            ("max_retries", num ctx.cfg.max_retries);
            ("seed", num ctx.cfg.seed);
            ("tail_keep", num ctx.cfg.tail_keep);
            ("flight_buf", num ctx.cfg.flight_buf);
          ] );
    ]

(* Deliver [resp]; true iff this call won the ticket.  The winner —
   and only the winner — feeds the live-metrics instruments, so every
   histogram holds exactly one observation per completed request and
   [serve.total_ms]'s count equals [completed] in {!health}.  The
   winner also settles the flight ring: retain (and link the dump as
   an exemplar on the latency histogram) or drop — so every completed
   request is counted exactly once as kept or dropped.  The winner is
   decided by [claim] and the response published by [fulfil] only
   after every completion side effect has run, so a client returning
   from [await] observes counters (and dump files) that already
   include its own request. *)
let complete ctx job resp =
  let won = claim job.tk in
  if won then begin
    Atomic.incr ctx.cnt.c_completed;
    let m = ctx.mx in
    Obs.Metrics.observe m.h_queue resp.wait_ms;
    Obs.Metrics.observe m.h_total resp.total_ms;
    Obs.Metrics.observe m.h_attempts (float_of_int resp.attempts);
    (match resp.reply with
    | Solved s ->
      Obs.Metrics.observe m.h_solve s.solve_ms;
      Obs.Metrics.observe m.h_validate s.validate_ms
    | Overloaded | Expired | Wedged _ | Invalid _ -> ());
    (* SLO accounting: a response is [ok] when a schedule (or an
       infeasibility proof) was delivered — exit codes 0/2/3; it met
       its deadline when it was ok and arrived within the request's
       own deadline (no deadline = met by definition). *)
    let ok = exit_code resp <= 3 in
    let deadline_met =
      ok
      &&
      match job.jr.deadline_ms with
      | None -> true
      | Some d -> resp.total_ms <= d
    in
    Obs.Metrics.slo_record m.s_slo ~ok ~deadline_met;
    Obs.Metrics.incr
      (Obs.Metrics.counter m.reg ("serve.status." ^ status_string resp));
    (match ctx.flight with
    | None -> ()
    | Some fl -> (
      (* worker -1 = never ran: no ring, meta-only dump when retained *)
      let tid = if resp.worker >= 0 then 1000 + resp.worker else -1 in
      match retention_reason ctx job resp with
      | None -> Obs.Flight.drop fl ~tid
      | Some reason ->
        let path =
          Obs.Flight.retain fl ~tid ~reason ~id:resp.r_id
            ~meta:(flight_meta ctx job resp)
        in
        let trace =
          match path with Some p -> Filename.basename p | None -> resp.r_id
        in
        Obs.Metrics.exemplar m.h_total resp.total_ms trace));
    ignore (fulfil job.tk resp)
  end;
  won

(* Backoff before retry producing attempt [k+1]: base * 2^(k-1) plus up
   to one base of jitter — deterministic, keyed on (seed, seq), so
   replays reproduce the exact pause schedule. *)
let backoff_ms cfg rng k =
  let base = cfg.backoff_base_ms in
  (base *. float_of_int (1 lsl (k - 1))) +. Random.State.float rng base

(* Sleep in short slices, stamping the heartbeat each slice so the
   watchdog never mistakes a deliberate backoff for a wedge, and
   checking the switch so a cancelled request stops waiting. *)
let backoff_sleep sw ms =
  let t0 = now () in
  while ms_since t0 < ms && not (Fd.Deadline.cancelled sw) do
    Unix.sleepf 0.005;
    Fd.Deadline.beat sw
  done

let solved_of_outcome ~solve_ms (o : Sched.Solve.outcome) =
  {
    st = o.Sched.Solve.status;
    eng = o.Sched.Solve.engine;
    makespan =
      Option.map (fun s -> s.Sched.Schedule.makespan) o.Sched.Solve.schedule;
    nodes = o.Sched.Solve.stats.Fd.Search.nodes;
    failures = o.Sched.Solve.stats.Fd.Search.failures;
    propagations = o.Sched.Solve.stats.Fd.Search.propagations;
    solve_ms;
    validate_ms = o.Sched.Solve.validate_ms;
    crashes = List.length o.Sched.Solve.crashes;
    cached = o.Sched.Solve.from_cache;
  }

(* Execute one job on pool slot [slot].  Attempts run the CP engine
   with the degradation ladder disabled, so a chaos-crashed attempt is
   visible as [Crashed] and retryable; only once the attempts are spent
   (or the deadline forbids another backoff) does the heuristic rescue
   run — as a zero-budget solve, which [Sched.Solve.run]
   short-circuits straight to the fallback without touching the
   engine. *)
let execute ctx ~slot job =
  let cfg = ctx.cfg in
  let tid = 1000 + slot in
  let wait_ms = ms_since job.t_admit in
  let finish ~attempts reply =
    ignore
      (complete ctx job
         {
           r_id = job.jr.id;
           reply;
           attempts;
           wait_ms;
           total_ms = ms_since job.t_admit;
           worker = slot;
         })
  in
  (* Reset this worker's flight ring so a later dump holds only this
     request's events.  (The previous request's closing span-end —
     emitted after its [finish] — is wiped here, which is fine: its
     retention decision already ran.) *)
  (match ctx.flight with
  | Some fl -> Obs.Flight.start fl ~tid
  | None -> ());
  Fd.Deadline.beat job.sw;
  if Fd.Deadline.expired job.dl then begin
    Atomic.incr ctx.cnt.c_expired;
    if job.sampled then obs_instant "serve.expire" job.jr.id;
    finish ~attempts:0 Expired
  end
  else
    match (resolve_graph ctx.kernels job.jr.workload, resolve_arch job.jr) with
    | Error msg, _ | _, Error msg ->
      Atomic.incr ctx.cnt.c_invalid;
      finish ~attempts:0 (Invalid msg)
    | Ok g, Ok arch ->
      (* Head sampling: an unsampled request runs with this domain's
         trace emission suppressed (metrics still record — they are
         aggregates, not events), so [--trace] plus [--trace-sample N]
         keeps 1-in-N full request traces at production load.  Caveat:
         portfolio domains spawned by the solver do not inherit the
         suppression.

         A flight recorder supersedes that blind suppression: any
         request can turn out to be the interesting one, so with
         tail retention on, every request emits — into the ring —
         and the completion path decides what survives. *)
      let body () =
      Obs.span ~cat:"serve" ~tid
        ~args:[ ("request_id", Obs.S job.jr.id) ]
        ("request:" ^ job.jr.id)
        (fun () ->
          let t0 = now () in
          let budget_ms =
            Option.value job.jr.budget_ms ~default:cfg.default_budget_ms
          in
          let max_attempts =
            1 + max 0 (Option.value job.jr.retries ~default:cfg.max_retries)
          in
          let rng = Random.State.make [| cfg.seed; job.seq; 0xbac0ff |] in
          let chaos =
            Option.map
              (fun c ->
                Fd.Chaos.with_escape c (fun () ->
                    Fd.Deadline.cancelled job.sw))
              cfg.chaos
          in
          let attempt k =
            Sched.Solve.run
              ~budget:(Fd.Search.time_budget budget_ms)
              ~deadline:job.dl ?chaos
              ~chaos_base:((job.seq * 8) + k)
              ~parallel:job.jr.parallel ~fallback:false ~tid ~arch
              ?cache:ctx.cache ~warm:cfg.warm_start ~metrics:ctx.mx.reg g
          in
          let rec go k o =
            match o.Sched.Solve.status with
            | Sched.Solve.Crashed
              when k < max_attempts && not (Fd.Deadline.cancelled job.sw) ->
              let pause = backoff_ms cfg rng k in
              let fits =
                match Fd.Deadline.remaining_ms job.dl with
                | None -> true
                | Some r -> r > pause +. 10.
              in
              if not fits then (o, k)
              else begin
                Atomic.incr ctx.cnt.c_retries;
                obs_instant "serve.retry" job.jr.id;
                backoff_sleep job.sw pause;
                if Fd.Deadline.cancelled job.sw then (o, k)
                else
                  (* carry the crash history of spent attempts forward,
                     so a rescued request still reports how it got
                     there *)
                  let o' = attempt (k + 1) in
                  go (k + 1)
                    {
                      o' with
                      Sched.Solve.crashes =
                        o.Sched.Solve.crashes @ o'.Sched.Solve.crashes;
                    }
              end
            | _ -> (o, k)
          in
          let o, attempts = go 1 (attempt 1) in
          let o =
            if
              o.Sched.Solve.schedule = None
              && o.Sched.Solve.status <> Sched.Solve.Infeasible
              && not (Fd.Deadline.cancelled job.sw)
            then begin
              let r =
                Sched.Solve.run ~budget:(Fd.Search.time_budget 0.) ~tid ~arch
                  ~metrics:ctx.mx.reg g
              in
              (* The rescue contributes status / engine / schedule; the
                 search stats and crash history stay those of the real
                 attempts — the rescue did no search. *)
              {
                r with
                Sched.Solve.stats = o.Sched.Solve.stats;
                crashes = o.Sched.Solve.crashes @ r.Sched.Solve.crashes;
              }
            end
            else o
          in
          if
            o.Sched.Solve.engine = Sched.Solve.Fallback
            && o.Sched.Solve.schedule <> None
          then Atomic.incr ctx.cnt.c_fallbacks;
          finish ~attempts
            (Solved (solved_of_outcome ~solve_ms:(ms_since t0) o)))
      in
      if job.sampled || Option.is_some ctx.flight then body ()
      else Obs.with_suppressed body

let worker_body ctx ~slot ~alive ~cell =
  if Obs.enabled () then
    Obs.thread_name ~cat:"serve" ~tid:(1000 + slot)
      (Printf.sprintf "pool-worker-%d" slot);
  let rec loop () =
    match Queue.pop ctx.q with
    | None -> ()
    | Some job ->
      Atomic.set cell (Some job);
      (try execute ctx ~slot job
       with _ ->
         (* Isolation of last resort: whatever escaped, the request is
            still answered (as a crash) and the worker keeps serving. *)
         ignore
           (complete ctx job
              {
                r_id = job.jr.id;
                reply =
                  Solved
                    {
                      st = Sched.Solve.Crashed;
                      eng = Sched.Solve.Cp;
                      makespan = None;
                      nodes = 0;
                      failures = 0;
                      propagations = 0;
                      solve_ms = 0.;
                      validate_ms = 0.;
                      crashes = 1;
                      cached = false;
                    };
                attempts = 1;
                wait_ms = ms_since job.t_admit;
                total_ms = ms_since job.t_admit;
                worker = slot;
              }));
      Atomic.set cell None;
      if alive () then loop ()
  in
  loop ()

(* The supervisor loop: expire requests still queued past their
   deadline (no worker burnt), declare no-poll-progress workers wedged
   — cancel their switch, answer the request, revive the slot — and
   sample the queue depth for the trace. *)
let watchdog ctx pool stop =
  while not (Atomic.get stop) do
    Unix.sleepf (ctx.cfg.watchdog_tick_ms /. 1000.);
    let dead = Queue.drain_if ctx.q (fun j -> Fd.Deadline.expired j.dl) in
    List.iter
      (fun j ->
        Atomic.incr ctx.cnt.c_expired;
        if j.sampled then obs_instant "serve.expire" j.jr.id;
        ignore
          (complete ctx j
             {
               r_id = j.jr.id;
               reply = Expired;
               attempts = 0;
               wait_ms = ms_since j.t_admit;
               total_ms = ms_since j.t_admit;
               worker = -1;
             }))
      dead;
    Array.iteri
      (fun slot cell ->
        match Atomic.get cell with
        | Some j
          when (not (Fd.Deadline.cancelled j.sw))
               && Fd.Deadline.idle_ms j.sw > ctx.cfg.grace_ms ->
          Fd.Deadline.cancel ~reason:"watchdog" j.sw;
          if j.sampled then obs_instant "serve.wedge" j.jr.id;
          let resp =
            {
              r_id = j.jr.id;
              reply =
                Wedged
                  (Printf.sprintf
                     "worker %d: no solver progress within %.0f ms" slot
                     ctx.cfg.grace_ms);
              attempts = 1;
              wait_ms = ms_since j.t_admit;
              total_ms = ms_since j.t_admit;
              worker = slot;
            }
          in
          (* Revive only if this verdict won the ticket: losing the race
             means the worker just finished on its own — it is not
             wedged, and it will pick the next job up normally. *)
          if complete ctx j resp then begin
            Atomic.incr ctx.cnt.c_wedged;
            Pool.revive pool slot
          end
        | _ -> ())
      (Pool.cells pool);
    Obs.Metrics.set_gauge ctx.mx.g_depth (float_of_int (Queue.length ctx.q));
    if Obs.enabled () then
      Obs.counter ~cat:"serve" "serve.queue"
        [ ("depth", Obs.I (Queue.length ctx.q)) ]
  done

(* ------------------------------------------------------------------ *)

let create ?(config = default_config) () =
  let cnt =
    {
      c_submitted = Atomic.make 0;
      c_completed = Atomic.make 0;
      c_shed = Atomic.make 0;
      c_expired = Atomic.make 0;
      c_wedged = Atomic.make 0;
      c_retries = Atomic.make 0;
      c_fallbacks = Atomic.make 0;
      c_invalid = Atomic.make 0;
    }
  in
  let flight =
    Option.map
      (fun dir -> Obs.Flight.create ~capacity:config.flight_buf ~dir ())
      config.flight_dir
  in
  let ctx =
    {
      cfg = config;
      kernels = compile_kernels ();
      cnt;
      q = Queue.create ~capacity:config.queue;
      flight;
      cache =
        (if config.cache_capacity > 0 then
           Some (Cache.create ~capacity:config.cache_capacity)
         else None);
      mx =
        (* the caller's registry, or a private *disabled* one: an
           embedded service with [metrics = None] pays one atomic load
           per record and perturbs nothing (the chaos soak's fault
           sites depend on that); pass [Some reg] to aggregate. *)
        make_instruments
          (match config.metrics with
          | Some r -> r
          | None -> Obs.Metrics.create ~enabled:false ());
    }
  in
  (* The recorder is an ordinary sink: attaching it turns event
     emission on even without --trace, so rings fill for every
     request.  Detached at shutdown. *)
  let fl_h = Option.map (fun fl -> Obs.attach (Obs.Flight.sink fl)) flight in
  let pool = Pool.create ~size:config.pool (worker_body ctx) in
  let wd_stop = Atomic.make false in
  let wd = Domain.spawn (fun () -> watchdog ctx pool wd_stop) in
  {
    ctx;
    pool;
    seq = Atomic.make 0;
    wd_stop;
    wd;
    fl_h;
    shut_m = Mutex.create ();
    shut = false;
  }

let submit ?on_complete t req =
  Atomic.incr t.ctx.cnt.c_submitted;
  let tk =
    {
      tm = Mutex.create ();
      tc = Condition.create ();
      tr = None;
      claimed = false;
      cb = on_complete;
    }
  in
  let sw = Fd.Deadline.switch () in
  let dl =
    Fd.Deadline.with_switch
      (match req.deadline_ms with
      | Some ms -> Fd.Deadline.after_ms ms
      | None -> Fd.Deadline.none)
      sw
  in
  let seq = Atomic.fetch_and_add t.seq 1 in
  let sampled =
    t.ctx.cfg.trace_sample <= 1 || seq mod t.ctx.cfg.trace_sample = 0
  in
  let job = { jr = req; seq; dl; sw; t_admit = now (); tk; sampled } in
  if sampled then obs_instant "serve.admit" req.id;
  (match Queue.push t.ctx.q job with
  | `Ok -> ()
  | `Full | `Closed ->
    Atomic.incr t.ctx.cnt.c_shed;
    if sampled then obs_instant "serve.shed" req.id;
    ignore
      (complete t.ctx job
         {
           r_id = req.id;
           reply = Overloaded;
           attempts = 0;
           wait_ms = 0.;
           total_ms = ms_since job.t_admit;
           worker = -1;
         }));
  tk

let health t =
  let cs =
    match t.ctx.cache with
    | Some c -> Cache.stats c
    | None -> { Cache.hits = 0; misses = 0; evictions = 0; stores = 0 }
  in
  let fs =
    match t.ctx.flight with
    | Some fl -> Obs.Flight.stats fl
    | None -> { Obs.Flight.kept = 0; dropped = 0; dumped = 0 }
  in
  {
    alive = Pool.alive_count t.pool;
    queue_depth = Queue.length t.ctx.q;
    revived = Pool.revived t.pool;
    zombies = Pool.zombie_count t.pool;
    submitted = Atomic.get t.ctx.cnt.c_submitted;
    completed = Atomic.get t.ctx.cnt.c_completed;
    shed = Atomic.get t.ctx.cnt.c_shed;
    expired = Atomic.get t.ctx.cnt.c_expired;
    wedged = Atomic.get t.ctx.cnt.c_wedged;
    retries = Atomic.get t.ctx.cnt.c_retries;
    fallbacks = Atomic.get t.ctx.cnt.c_fallbacks;
    invalid = Atomic.get t.ctx.cnt.c_invalid;
    cache_hits = cs.Cache.hits;
    cache_misses = cs.Cache.misses;
    cache_evictions = cs.Cache.evictions;
    flight_kept = fs.Obs.Flight.kept;
    flight_dropped = fs.Obs.Flight.dropped;
    flight_dumped = fs.Obs.Flight.dumped;
    lat_total = Obs.Metrics.hstats t.ctx.mx.h_total;
    lat_queue = Obs.Metrics.hstats t.ctx.mx.h_queue;
    lat_solve = Obs.Metrics.hstats t.ctx.mx.h_solve;
    slo = Obs.Metrics.slo_stats t.ctx.mx.s_slo;
  }

let metrics t = t.ctx.mx.reg

(* The daemon-fatal black box: called by the CLI when an exception is
   about to take the whole process down — every live ring plus the
   service's counters, so the crash leaves evidence behind. *)
let flight_dump_all t ~reason =
  match t.ctx.flight with
  | None -> None
  | Some fl ->
    let module J = Obs.Json in
    let num a = J.Num (float_of_int (Atomic.get a)) in
    Obs.Flight.dump_all fl ~reason
      ~meta:
        [
          ("submitted", num t.ctx.cnt.c_submitted);
          ("completed", num t.ctx.cnt.c_completed);
          ("shed", num t.ctx.cnt.c_shed);
          ("expired", num t.ctx.cnt.c_expired);
          ("wedged", num t.ctx.cnt.c_wedged);
          ("pool", J.Num (float_of_int t.ctx.cfg.pool));
          ("queue", J.Num (float_of_int t.ctx.cfg.queue));
          ("seed", J.Num (float_of_int t.ctx.cfg.seed));
        ]

let shutdown t =
  Mutex.lock t.shut_m;
  let first = not t.shut in
  t.shut <- true;
  Mutex.unlock t.shut_m;
  if first then begin
    Queue.close t.ctx.q;
    (* Workers drain what is already queued; the watchdog stays alive
       until they are done so a wedge during the drain is still
       caught and its request still answered. *)
    Pool.join t.pool;
    Atomic.set t.wd_stop true;
    Domain.join t.wd;
    Pool.join_zombies t.pool;
    Option.iter Obs.detach t.fl_h
  end

let pp_reply ppf = function
  | Solved s ->
    Format.fprintf ppf "solved(%a/%a%t)" Sched.Solve.pp_status s.st
      Sched.Solve.pp_engine s.eng (fun ppf ->
        match s.makespan with
        | Some m -> Format.fprintf ppf ", makespan=%d" m
        | None -> ())
  | Overloaded -> Format.pp_print_string ppf "rejected_overload"
  | Expired -> Format.pp_print_string ppf "expired"
  | Wedged m -> Format.fprintf ppf "wedged: %s" m
  | Invalid m -> Format.fprintf ppf "invalid: %s" m
