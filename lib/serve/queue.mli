(** Bounded multi-producer / multi-consumer admission queue.

    The service's load-shedding point: {!push} never blocks — a full
    queue answers [`Full] immediately, turning overload into a typed
    rejection instead of unbounded latency.  {!pop} blocks until an
    item arrives or the queue is closed and drained, so pool workers
    need no busy-waiting.  {!drain_if} lets a supervisor remove (and
    fail fast) items that expired while waiting, without burning a
    worker on them. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking admission. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available; [None] once the queue is closed
    {e and} empty (remaining items are still drained after close). *)

val drain_if : 'a t -> ('a -> bool) -> 'a list
(** Atomically remove and return every queued item matching the
    predicate, oldest first. *)

val length : 'a t -> int
val close : 'a t -> unit
(** Stop admitting; wake every blocked {!pop}.  Idempotent. *)

val is_closed : 'a t -> bool
