type 'a t = {
  cap : int;
  m : Mutex.t;
  nonempty : Condition.t;
  q : 'a Stdlib.Queue.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Serve.Queue.create: capacity < 1";
  {
    cap = capacity;
    m = Mutex.create ();
    nonempty = Condition.create ();
    q = Stdlib.Queue.create ();
    closed = false;
  }

let push t x =
  Mutex.lock t.m;
  let r =
    if t.closed then `Closed
    else if Stdlib.Queue.length t.q >= t.cap then `Full
    else begin
      Stdlib.Queue.push x t.q;
      Condition.signal t.nonempty;
      `Ok
    end
  in
  Mutex.unlock t.m;
  r

let pop t =
  Mutex.lock t.m;
  while Stdlib.Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.m
  done;
  let r = Stdlib.Queue.take_opt t.q in
  Mutex.unlock t.m;
  r

let drain_if t pred =
  Mutex.lock t.m;
  let kept = Stdlib.Queue.create () and removed = ref [] in
  Stdlib.Queue.iter
    (fun x -> if pred x then removed := x :: !removed else Stdlib.Queue.push x kept)
    t.q;
  Stdlib.Queue.clear t.q;
  Stdlib.Queue.transfer kept t.q;
  Mutex.unlock t.m;
  List.rev !removed

let length t =
  Mutex.lock t.m;
  let n = Stdlib.Queue.length t.q in
  Mutex.unlock t.m;
  n

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m

let is_closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c
