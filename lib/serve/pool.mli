(** A fixed-size pool of OCaml 5 worker domains with crash isolation
    and revival.

    Each of the [size] slots runs one worker domain executing the
    supplied body.  The body is handed:

    - [slot]: its slot index (stable across revivals);
    - [alive]: whether this worker is still the slot's current
      generation — a revived-over worker must exit at the next safe
      point (it cannot be killed);
    - [cell]: a published work cell a supervisor can read to see what
      the worker is doing right now (the service stores its in-flight
      job here, so the watchdog can find wedged requests).

    {!revive} supersedes a slot's worker: the generation counter bumps
    (flipping the old worker's [alive] to false), a fresh domain is
    spawned into the slot, and the old domain becomes a {e zombie} —
    unjoinable until it reaches a cancellation point on its own.
    Zombies are joined at {!join_zombies} (shutdown), bounded in
    practice by the faults' own escape hatches. *)

type 'a t

val create :
  size:int ->
  (slot:int -> alive:(unit -> bool) -> cell:'a option Atomic.t -> unit) ->
  'a t
(** Spawn [size] worker domains.  A body that raises (or returns) ends
    that worker; the exception is swallowed — isolation is the point —
    and the slot shows up as dead in {!alive_count} until revived.
    @raise Invalid_argument when [size < 1]. *)

val size : 'a t -> int

val cells : 'a t -> 'a option Atomic.t array
(** Snapshot of the current generation's work cells, indexed by slot. *)

val revive : 'a t -> int -> unit
(** Supersede [slot]'s worker with a fresh domain.  The old worker's
    [alive] turns false immediately; it is kept as a zombie until
    {!join_zombies}. *)

val alive_count : 'a t -> int
(** Current-generation workers whose body has not finished. *)

val revived : 'a t -> int
(** Total revivals performed. *)

val zombie_count : 'a t -> int
(** Superseded workers not yet joined. *)

val join : 'a t -> unit
(** Join every current-generation worker (including ones revived while
    joining).  Call after the work source is closed. *)

val join_zombies : 'a t -> unit
(** Join every superseded worker.  Blocks until each one reaches its
    escape hatch; call last, at shutdown. *)
