module Key = Key

type payload =
  | Schedule of {
      start : int array;
      slot : (int * int) list;
      makespan : int;
    }
  | Infeasible

(* Intrusive doubly-linked LRU list; [tbl] maps the key's full
   canonical representation (not just the digest) to its cell, so a
   digest collision can never alias two different problems. *)
type cell = {
  key : Key.t;
  mutable pl : payload;
  mutable prev : cell option;
  mutable next : cell option;
}

type stats = { hits : int; misses : int; evictions : int; stores : int }

type t = {
  cap : int;
  tbl : (string, cell) Hashtbl.t;
  mutable head : cell option; (* most recently used *)
  mutable tail : cell option; (* least recently used *)
  mutable size : int;
  hints : (string, int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stores : int;
  m : Mutex.t;
}

let create ~capacity =
  {
    cap = capacity;
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    size = 0;
    hints = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    evictions = 0;
    stores = 0;
    m = Mutex.create ();
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let unlink t c =
  (match c.prev with Some p -> p.next <- c.next | None -> t.head <- c.next);
  (match c.next with Some n -> n.prev <- c.prev | None -> t.tail <- c.prev);
  c.prev <- None;
  c.next <- None

let push_front t c =
  c.next <- t.head;
  c.prev <- None;
  (match t.head with Some h -> h.prev <- Some c | None -> t.tail <- Some c);
  t.head <- Some c

(* Called under the cache mutex; Obs serializes internally and never
   calls back into the cache, so the lock order is safe. *)
let obs_lookup t name =
  if Obs.enabled () then begin
    Obs.instant ~cat:"cache" name;
    let total = t.hits + t.misses in
    let rate =
      if total = 0 then 0. else float_of_int t.hits /. float_of_int total
    in
    Obs.counter ~cat:"cache" "cache.hit-rate"
      [ ("hits", Obs.I t.hits); ("misses", Obs.I t.misses); ("rate", Obs.F rate) ]
  end

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (Key.repr k) with
      | Some c ->
        unlink t c;
        push_front t c;
        t.hits <- t.hits + 1;
        obs_lookup t "cache.hit";
        Some c.pl
      | None ->
        t.misses <- t.misses + 1;
        obs_lookup t "cache.miss";
        None)

let evict_excess t =
  while t.size > t.cap do
    match t.tail with
    | None -> t.size <- 0
    | Some c ->
      unlink t c;
      Hashtbl.remove t.tbl (Key.repr c.key);
      t.size <- t.size - 1;
      t.evictions <- t.evictions + 1;
      if Obs.enabled () then Obs.instant ~cat:"cache" "cache.evict"
  done

let store_unlocked t k pl =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.tbl (Key.repr k) with
    | Some c ->
      c.pl <- pl;
      unlink t c;
      push_front t c
    | None ->
      let c = { key = k; pl; prev = None; next = None } in
      Hashtbl.replace t.tbl (Key.repr k) c;
      push_front t c;
      t.size <- t.size + 1);
    t.stores <- t.stores + 1;
    evict_excess t
  end

let store t k pl = locked t (fun () -> store_unlocked t k pl)

let remove t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (Key.repr k) with
      | Some c ->
        unlink t c;
        Hashtbl.remove t.tbl (Key.repr k);
        t.size <- t.size - 1
      | None -> ())

let length t = locked t (fun () -> t.size)

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        stores = t.stores })

(* ------------------------------------------------------------------ *)

(* Keep the tightest (smallest) validated makespan per shape: a smaller
   upper bound prunes more, and both are sound as warm seeds.  The
   index is bounded; on overflow it is simply dropped — hints are
   advisory. *)
let note_hint t ~shape mk =
  locked t (fun () ->
      if Hashtbl.length t.hints > max 64 (4 * t.cap) then
        Hashtbl.reset t.hints;
      match Hashtbl.find_opt t.hints shape with
      | Some old when old <= mk -> ()
      | _ -> Hashtbl.replace t.hints shape mk)

let hint t ~shape = locked t (fun () -> Hashtbl.find_opt t.hints shape)

(* ------------------------------------------------------------------ *)

module J = Obs.Json

let json_of_payload = function
  | Schedule { start; slot; makespan } ->
    [
      ("kind", J.Str "schedule");
      ("makespan", J.Num (float_of_int makespan));
      ( "start",
        J.Arr (Array.to_list (Array.map (fun s -> J.Num (float_of_int s)) start))
      );
      ( "slot",
        J.Arr
          (List.map
             (fun (i, s) ->
               J.Arr [ J.Num (float_of_int i); J.Num (float_of_int s) ])
             slot) );
    ]
  | Infeasible -> [ ("kind", J.Str "infeasible") ]

let save t path =
  let entries, hints =
    locked t (fun () ->
        let rec walk acc = function
          | None -> List.rev acc
          | Some c ->
            let e =
              J.Obj (("repr", J.Str (Key.repr c.key)) :: json_of_payload c.pl)
            in
            walk (e :: acc) c.next
        in
        ( walk [] t.head,
          Hashtbl.fold
            (fun shape mk acc ->
              J.Arr [ J.Str shape; J.Num (float_of_int mk) ] :: acc)
            t.hints [] ))
  in
  let doc =
    J.Obj
      [
        ("version", J.Num 1.);
        ("entries", J.Arr entries);
        ("hints", J.Arr hints);
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (J.to_string doc);
      Out_channel.output_char oc '\n')

let int_of_num = function J.Num f -> Some (int_of_float f) | _ -> None

let payload_of_json j =
  match J.member "kind" j with
  | Some (J.Str "infeasible") -> Some Infeasible
  | Some (J.Str "schedule") -> (
    match (J.member "makespan" j, J.member "start" j, J.member "slot" j) with
    | Some (J.Num mk), Some (J.Arr starts), Some (J.Arr slots) ->
      let start = List.filter_map int_of_num starts in
      let slot =
        List.filter_map
          (function
            | J.Arr [ J.Num i; J.Num s ] ->
              Some (int_of_float i, int_of_float s)
            | _ -> None)
          slots
      in
      if List.length start <> List.length starts
         || List.length slot <> List.length slots
      then None
      else
        Some
          (Schedule { start = Array.of_list start; slot; makespan = int_of_float mk })
    | _ -> None)
  | _ -> None

let load ~capacity path =
  match J.parse_file path with
  | Error e -> Error e
  | Ok doc -> (
    match (J.member "entries" doc, J.member "hints" doc) with
    | Some (J.Arr entries), Some (J.Arr hints) ->
      let t = create ~capacity in
      (* Entries were saved most-recent-first; inserting in reverse
         restores both the recency order and, beyond capacity, drops
         exactly the oldest ones. *)
      List.iter
        (fun e ->
          match (J.member "repr" e, payload_of_json e) with
          | Some (J.Str repr), Some pl ->
            store_unlocked t (Key.of_repr repr) pl;
            t.stores <- t.stores - 1 (* loads are not stores *)
          | _ -> ())
        (List.rev entries);
      t.evictions <- 0;
      List.iter
        (function
          | J.Arr [ J.Str shape; J.Num mk ] ->
            Hashtbl.replace t.hints shape (int_of_float mk)
          | _ -> ())
        hints;
      Ok t
    | _ -> Error "cache file: missing \"entries\"/\"hints\"")
