(** A bounded LRU solution cache for solve outcomes, shared across
    requests (and across worker domains: every operation takes one
    internal mutex).

    Payloads live in {e canonical index space} (see {!Key.canon}): a
    hit from a graph that is isomorphic — but not identical — to the
    one that populated the entry is replayed through the requesting
    graph's own canonical permutation by {!Sched.Solve.run}.

    Only results that are deadline-independent facts about the problem
    are ever stored: proven-optimal validated schedules and genuine
    infeasibility proofs.  Timeouts, crashes and fallback schedules
    never populate the cache (the poisoned-entry property tested in
    [test/t_cache.ml] and [test/t_serve.ml]). *)

module Key = Key

type payload =
  | Schedule of {
      start : int array;        (** canonical index -> start cycle *)
      slot : (int * int) list;  (** canonical index -> memory slot *)
      makespan : int;
    }  (** a proven-optimal, validated schedule *)
  | Infeasible  (** a proof that no schedule exists *)

type t

type stats = { hits : int; misses : int; evictions : int; stores : int }

val create : capacity:int -> t
(** [capacity <= 0] disables storage: every lookup misses, nothing is
    retained. *)

val capacity : t -> int

val find : t -> Key.t -> payload option
(** Bumps the entry to most-recently-used; counts a hit or a miss and
    emits a [cache.hit]/[cache.miss] instant plus the [cache.hit-rate]
    counter when an {!Obs} sink is attached. *)

val store : t -> Key.t -> payload -> unit
(** Insert (or refresh) at most-recently-used; evicts the
    least-recently-used entry beyond [capacity] (counted, and emitted
    as a [cache.evict] instant). *)

val remove : t -> Key.t -> unit
(** Drop an entry — used when a cached schedule fails re-validation on
    hit (a corrupt persisted file, a changed validator). *)

val length : t -> int
val stats : t -> stats

(** {1 Warm-start hints}

    A side index from {!Key.shape_digest} to the best validated
    makespan seen for that shape — the "previous incumbent" that seeds
    a warm re-solve of an edited graph.  Hints are advisory: a stale or
    too-tight hint costs a cold re-run, never soundness. *)

val note_hint : t -> shape:string -> int -> unit
val hint : t -> shape:string -> int option

(** {1 Persistence}

    A printable JSON snapshot, so a CLI invocation can carry its cache
    across processes ([eitc schedule --cache-file]).  Entries are
    written most-recent-first and reloaded preserving recency. *)

val save : t -> string -> unit
val load : capacity:int -> string -> (t, string) result
