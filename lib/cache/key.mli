(** Canonical cache keys for solve requests (DESIGN.md §11).

    A key identifies a scheduling problem — the merged IR, the
    architecture configuration and the solve options — up to
    alpha-renaming of node ids: two graphs that differ only in the
    order their nodes were built hash to the {e same} key, while any
    change that alters the model (an edge, an opcode, an arch knob, a
    solve option) yields a different one.

    Keys are collision-proof by construction: the full printable
    canonical encoding is retained in the key and compared on lookup;
    the MD5 digest is only a bucketing convenience.  Node labels and
    trace values are deliberately excluded — they do not change the
    scheduling model. *)

open Eit_dsl

type canon = {
  encoding : string;   (** printable canonical form of the graph *)
  to_canon : int array; (** node id -> canonical index *)
  of_canon : int array; (** canonical index -> node id *)
}
(** The canonical form of one graph.  [to_canon]/[of_canon] are inverse
    permutations; schedules are stored in canonical index space and
    replayed through them, so a hit from an isomorphic graph lands on
    the requesting graph's own node ids. *)

val canonicalize : Ir.t -> canon
(** Weisfeiler-Leman-style structural refinement (operand-position-
    sensitive up-hashes, sorted down-hashes) followed by
    individualization of residual ties, so automorphic builds agree on
    one canonical order.  Deterministic across processes: no
    [Hashtbl.hash], no address-dependent state. *)

type opts = {
  memory : bool;
  parallel : int;
  max_nodes : int option;
  max_time_ms : float option;
  validate : bool;
}
(** The solve options that are part of the problem identity.  Absolute
    deadlines and fault injection are excluded: the former is ephemeral
    wall-clock state, the latter disables caching entirely. *)

type t

val make : canon -> Eit.Arch.t -> opts -> t
(** Every field of {!Eit.Arch.t} enters the key. *)

val of_repr : string -> t
(** Rebuild a key from its stored representation (cache persistence). *)

val repr : t -> string
(** The full canonical representation — the key's identity. *)

val digest : t -> string
(** MD5 hex digest of {!repr} (bucketing only). *)

val equal : t -> t -> bool

val shape_digest : Ir.t -> string
(** A deliberately coarse digest — the multiset of (category, opcode)
    node kinds, ignoring edges and arch — used to index warm-start
    hints.  Looseness is safe: a warm bound is only ever a hint, and a
    wrong one falls back to a cold solve (see {!Sched.Solve.run}). *)
