open Eit_dsl

type canon = {
  encoding : string;
  to_canon : int array;
  of_canon : int array;
}

type opts = {
  memory : bool;
  parallel : int;
  max_nodes : int option;
  max_time_ms : float option;
  validate : bool;
}

type t = { repr : string; md5 : string }

(* ------------------------------------------------------------------ *)
(* Deterministic integer mixing.  [Hashtbl.hash] makes no cross-process
   stability promise, and keys are persisted to disk (`--cache-file`),
   so the mixer is spelled out: boost-style hash_combine masked to stay
   positive and identical on every 64-bit build. *)

let mask = (1 lsl 62) - 1

let mix h x =
  (h lxor (x + 0x9E3779B9 + (h lsl 6) + (h lsr 2))) land mask

let str_hash s = String.fold_left (fun h c -> mix h (Char.code c)) 17 s

let node_tag g id =
  let n = Ir.node g id in
  let h = str_hash (Ir.category_name n.Ir.cat) in
  match n.Ir.op with
  | Some op -> mix (mix h 2) (str_hash (Eit.Opcode.name op))
  | None -> mix h 1

(* One WL round: the up-hash folds predecessor hashes in operand order
   (operand position matters to the model).  The down-hash folds, per
   consumer, the consumer's hash mixed with the operand position(s) at
   which this node is consumed — the *set* of consumers is unordered,
   but two inputs feeding the same ops at different operand positions
   are not interchangeable, and without the position the refinement
   would call them tied and leave the tie to build order. *)
let refine g h =
  let n = Ir.size g in
  Array.init n (fun id ->
      let up =
        List.fold_left (fun acc p -> mix acc h.(p)) (mix h.(id) 0x55)
          (Ir.preds g id)
      in
      let down =
        Ir.succs g id
        |> List.sort_uniq compare
        |> List.concat_map (fun s ->
               List.concat
                 (List.mapi
                    (fun k p -> if p = id then [ mix h.(s) (k + 1) ] else [])
                    (Ir.preds g s)))
        |> List.sort compare
        |> List.fold_left mix 0x77
      in
      mix up down)

let distinct h =
  let a = Array.copy h in
  Array.sort compare a;
  let d = ref (if Array.length a = 0 then 0 else 1) in
  for i = 1 to Array.length a - 1 do
    if a.(i) <> a.(i - 1) then incr d
  done;
  !d

(* Refine until the partition stops splitting (one stagnant WL round is
   a fixpoint). *)
let refine_fix g h =
  let rec go h d =
    if d = Array.length h then h
    else
      let h' = refine g h in
      let d' = distinct h' in
      if d' > d then go h' d' else h'
  in
  go h (distinct h)

let canonicalize g =
  let n = Ir.size g in
  let h = ref (refine_fix g (Array.init n (node_tag g))) in
  let to_canon = Array.make n (-1) in
  let of_canon = Array.make n 0 in
  for idx = 0 to n - 1 do
    (* Minimal-hash unassigned node next.  Ties after a WL fixpoint are
       (conjectured) automorphic, so the pick among them is free; the
       individualization below then re-breaks their descendants
       consistently, making the final order build-independent. *)
    let best = ref (-1) in
    for id = n - 1 downto 0 do
      if to_canon.(id) < 0 && (!best < 0 || !h.(id) < !h.(!best)) then
        best := id
    done;
    let b = !best in
    let tied = ref 0 in
    Array.iteri
      (fun id hv -> if to_canon.(id) < 0 && hv = !h.(b) then incr tied)
      !h;
    to_canon.(b) <- idx;
    of_canon.(idx) <- b;
    if !tied > 1 then begin
      !h.(b) <- mix (mix 0x1D1 idx) 0x3;
      h := refine_fix g !h
    end
  done;
  let buf = Buffer.create (64 + (n * 12)) in
  Buffer.add_string buf
    (Printf.sprintf "g|n=%d|e=%d" n (Ir.edge_count g));
  for idx = 0 to n - 1 do
    let id = of_canon.(idx) in
    let nd = Ir.node g id in
    Buffer.add_char buf ';';
    Buffer.add_string buf (Ir.category_name nd.Ir.cat);
    Buffer.add_char buf ':';
    (match nd.Ir.op with
    | Some op -> Buffer.add_string buf (Eit.Opcode.name op)
    | None -> Buffer.add_char buf '_');
    Buffer.add_char buf ':';
    List.iteri
      (fun k p ->
        if k > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int to_canon.(p)))
      (Ir.preds g id)
  done;
  { encoding = Buffer.contents buf; to_canon; of_canon }

(* ------------------------------------------------------------------ *)

let opt_int = function None -> "_" | Some i -> string_of_int i

(* %h is exact (hex float), so budgets round-trip bit-for-bit. *)
let opt_float = function None -> "_" | Some f -> Printf.sprintf "%h" f

let encode_arch (a : Eit.Arch.t) =
  Printf.sprintf
    "a|l=%d,vl=%d,vd=%d,sl=%d,ssl=%d,sd=%d,il=%d,id=%d,b=%d,ps=%d,ln=%d,slim=%s,rd=%d,wr=%d,rc=%d"
    a.Eit.Arch.n_lanes a.Eit.Arch.vector_latency a.Eit.Arch.vector_duration
    a.Eit.Arch.scalar_latency a.Eit.Arch.scalar_simple_latency
    a.Eit.Arch.scalar_duration a.Eit.Arch.im_latency a.Eit.Arch.im_duration
    a.Eit.Arch.banks a.Eit.Arch.page_size a.Eit.Arch.lines
    (opt_int a.Eit.Arch.slot_limit)
    a.Eit.Arch.max_reads_per_cycle a.Eit.Arch.max_writes_per_cycle
    a.Eit.Arch.reconfig_cost

let encode_opts o =
  Printf.sprintf "o|m=%b,p=%d,mn=%s,mt=%s,v=%b" o.memory o.parallel
    (opt_int o.max_nodes) (opt_float o.max_time_ms) o.validate

let of_repr repr = { repr; md5 = Digest.to_hex (Digest.string repr) }

let make canon arch opts =
  of_repr
    (String.concat "\n" [ canon.encoding; encode_arch arch; encode_opts opts ])

let repr k = k.repr
let digest k = k.md5
let equal a b = String.equal a.repr b.repr

let shape_digest g =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (nd : Ir.node) ->
      let k =
        Ir.category_name nd.Ir.cat ^ ":"
        ^ (match nd.Ir.op with
          | Some op -> Eit.Opcode.name op
          | None -> "_")
      in
      Hashtbl.replace tally k
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    (Ir.nodes g);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort compare
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
  |> String.concat ";"
  |> fun s -> Digest.to_hex (Digest.string s)
