#!/bin/sh
# Tier-1 verification: full build (including tests and benches) plus the
# complete test suite.  Exits non-zero on any failure.
set -e
cd "$(dirname "$0")"
dune build @all
dune runtest
