#!/bin/sh
# Tier-1 verification: full build (including tests and benches) plus the
# complete test suite.  Exits non-zero on any failure.
set -e
cd "$(dirname "$0")"
dune build @all
dune runtest

# Graceful-degradation contract: at a 0 ms budget the CP engine cannot
# produce anything, so every kernel must come back from the heuristic
# fallback — validator-clean, exit code 2 (degraded-but-usable).
EITC=_build/default/bin/eitc.exe
for k in matmul qrd qrd-sorted arf fir corr detect; do
  out=$("$EITC" schedule "$k" --budget 0) && code=0 || code=$?
  if [ "$code" -ne 2 ]; then
    echo "check.sh: $k at --budget 0: expected exit 2 (fallback), got $code" >&2
    echo "$out" >&2
    exit 1
  fi
  case "$out" in
  *"engine=fallback"*) ;;
  *)
    echo "check.sh: $k at --budget 0: fallback engine not reported" >&2
    echo "$out" >&2
    exit 1
    ;;
  esac
done
echo "check.sh: fallback sweep OK (7 kernels, exit 2, validated)"

# Observability smoke: a traced QRD solve must produce a structurally
# valid Chrome trace (JSON parses, spans balanced per track) that the
# repo's own checker accepts, and the optimum must be unaffected by
# the attached sink.
trace=$(mktemp /tmp/eitc-trace.XXXXXX.json)
out=$("$EITC" schedule qrd --trace "$trace" --metrics) || {
  echo "check.sh: traced qrd schedule failed" >&2
  echo "$out" >&2
  rm -f "$trace"
  exit 1
}
case "$out" in
*"makespan=168"*) ;;
*)
  echo "check.sh: traced qrd solve did not report makespan=168" >&2
  echo "$out" >&2
  rm -f "$trace"
  exit 1
  ;;
esac
if ! "$EITC" trace-check "$trace"; then
  echo "check.sh: emitted trace failed validation" >&2
  rm -f "$trace"
  exit 1
fi
echo "check.sh: trace smoke OK (qrd traced, makespan 168, trace validates)"

# Trace analytics smoke: the report must parse its own trace, the
# folded flame output must be non-empty, a trace diffed against itself
# must be regression-free (exit 0), and a doctored copy with inflated
# propagator run counts must trip the gate (exit 1).
folded=$(mktemp /tmp/eitc-flame.XXXXXX.folded)
if ! "$EITC" trace-report "$trace" --utilization --flame "$folded" > /dev/null; then
  echo "check.sh: trace-report failed on the traced qrd run" >&2
  rm -f "$trace" "$folded"
  exit 1
fi
if ! [ -s "$folded" ]; then
  echo "check.sh: trace-report --flame wrote an empty folded file" >&2
  rm -f "$trace" "$folded"
  exit 1
fi
if ! "$EITC" trace-diff "$trace" "$trace" --threshold 1 > /dev/null; then
  echo "check.sh: self trace-diff reported a regression" >&2
  rm -f "$trace" "$folded"
  exit 1
fi
doctored=$(mktemp /tmp/eitc-doctored.XXXXXX.json)
sed 's/"runs":[0-9]*/"runs":9999999/g' "$trace" > "$doctored"
if "$EITC" trace-diff "$trace" "$doctored" --threshold 10 > /dev/null; then
  echo "check.sh: doctored trace-diff did not fail" >&2
  rm -f "$trace" "$folded" "$doctored"
  exit 1
fi
rm -f "$trace" "$folded" "$doctored"
echo "check.sh: trace analytics OK (report + flame, self-diff clean, doctored diff gated)"

# Propagation-budget smoke: the profile-guided engine (entailment +
# staged watch sets + incremental propagators) holds MATMUL's
# sequential solve around 440k propagator runs; the pre-entailment
# engine needed ~1.26M.  A breach of this ceiling means a wake-gating
# or entailment path quietly stopped working.
out=$("$EITC" schedule matmul) || {
  echo "check.sh: matmul schedule failed" >&2
  echo "$out" >&2
  exit 1
}
props=$(printf '%s\n' "$out" | sed -n 's/.* \([0-9][0-9]*\) props.*/\1/p')
if [ -z "$props" ]; then
  echo "check.sh: matmul report line lacks a props count" >&2
  echo "$out" >&2
  exit 1
fi
if [ "$props" -gt 600000 ]; then
  echo "check.sh: matmul used $props propagations (budget 600000)" >&2
  exit 1
fi
echo "check.sh: propagation budget OK (matmul $props props <= 600000)"

# Service smoke: three line-delimited JSON requests — two solvable
# kernels and one malformed XML payload — through `eitc serve`.  The
# daemon must answer every line exactly once, report the known optima,
# turn the bad payload into a typed per-request error (never a daemon
# exit), and quit cleanly on EOF.
serve_out=$(printf '%s\n' \
  '{"id":"a","kernel":"qrd"}' \
  '{"id":"b","kernel":"fir"}' \
  '{"id":"c","xml":"<graph><bogus"}' \
  | "$EITC" serve --pool 2 --queue 8) || {
  echo "check.sh: eitc serve exited non-zero" >&2
  echo "$serve_out" >&2
  exit 1
}
lines=$(printf '%s\n' "$serve_out" | grep -c '"id"')
if [ "$lines" -ne 3 ]; then
  echo "check.sh: serve answered $lines lines, expected 3" >&2
  echo "$serve_out" >&2
  exit 1
fi
for want in \
  '"id": "a", "status": "optimal"' \
  '"id": "b", "status": "optimal"' \
  '"id": "c", "status": "error"'; do
  case "$serve_out" in
  *"$want"*) ;;
  *)
    echo "check.sh: serve output lacks [$want]" >&2
    echo "$serve_out" >&2
    exit 1
    ;;
  esac
done
echo "check.sh: serve smoke OK (2 solved + 1 typed error, clean EOF shutdown)"

# Solution-cache smoke: two identical `eitc schedule --cache` runs
# through a persisted cache file.  The second run must be answered from
# the cache — reported as a hit, with zero search work — and still
# print the known optimum.
cachef=$(mktemp /tmp/eitc-cache.XXXXXX.json)
rm -f "$cachef"
out=$("$EITC" schedule qrd --cache 16 --cache-file "$cachef") || {
  echo "check.sh: cached qrd schedule (cold) failed" >&2
  echo "$out" >&2
  rm -f "$cachef"
  exit 1
}
case "$out" in
*"cache: miss"*) ;;
*)
  echo "check.sh: first cached run did not report a miss" >&2
  echo "$out" >&2
  rm -f "$cachef"
  exit 1
  ;;
esac
out=$("$EITC" schedule qrd --cache 16 --cache-file "$cachef") || {
  echo "check.sh: cached qrd schedule (hit) failed" >&2
  echo "$out" >&2
  rm -f "$cachef"
  exit 1
}
rm -f "$cachef"
case "$out" in
*"cache: hit"*) ;;
*)
  echo "check.sh: second identical run did not hit the cache" >&2
  echo "$out" >&2
  exit 1
  ;;
esac
case "$out" in
*"makespan=168"*) ;;
*)
  echo "check.sh: cached replay did not report makespan=168" >&2
  echo "$out" >&2
  exit 1
  ;;
esac
case "$out" in
*" 0 nodes, 0 fails, 0 props"*) ;;
*)
  echo "check.sh: cached replay still did search work" >&2
  echo "$out" >&2
  exit 1
  ;;
esac
echo "check.sh: cache smoke OK (hit on second run, 0 props, makespan 168)"

# Telemetry smoke: 8 requests plus an in-band stats probe through a
# fully instrumented `eitc serve` — live-metrics snapshots (JSONL +
# Prometheus), a structured request log, and 1-in-4 head-sampled
# tracing.  The snapshot must carry quantiles, `eitc metrics-report`
# must render it, the stats probe must be answered inline, every log
# line must be a full response record, and the sampled trace must
# still pass the repo's own structural checker.
mfile=$(mktemp /tmp/eitc-metrics.XXXXXX.jsonl)
tfile=$(mktemp /tmp/eitc-strace.XXXXXX.json)
lfile=$(mktemp /tmp/eitc-reqlog.XXXXXX.jsonl)
tele_out=$( { for i in 0 1 2 3 4 5 6 7; do
    printf '{"id":"t%d","kernel":"fir"}\n' "$i"
  done
  printf '{"stats":true,"id":"probe"}\n'
  } | "$EITC" serve --pool 2 --queue 16 \
        --metrics-file "$mfile" --stats-interval 100 \
        --trace "$tfile" --trace-sample 4 --log "$lfile") || {
  echo "check.sh: instrumented eitc serve exited non-zero" >&2
  echo "$tele_out" >&2
  rm -f "$mfile" "$mfile.prom" "$tfile" "$lfile"
  exit 1
}
fail_tele() {
  echo "check.sh: $1" >&2
  rm -f "$mfile" "$mfile.prom" "$tfile" "$lfile"
  exit 1
}
case "$tele_out" in
*'"stats"'*) ;;
*) fail_tele "stats probe was not answered" ;;
esac
grep -q '"p99"' "$mfile" || fail_tele "metrics snapshot lacks quantiles"
grep -q '"serve.total_ms"' "$mfile" || fail_tele "metrics snapshot lacks serve.total_ms"
grep -q 'quantile=' "$mfile.prom" || fail_tele "prometheus file lacks quantile samples"
"$EITC" metrics-report "$mfile" > /dev/null || fail_tele "metrics-report rejected the snapshot"
"$EITC" trace-check "$tfile" || fail_tele "sampled trace failed validation"
sampled=$(grep -o '"request:t[0-9]*"' "$tfile" | sort -u | wc -l)
if [ "$sampled" -ne 2 ]; then
  fail_tele "1-in-4 sampling kept $sampled of 8 request traces, expected 2"
fi
loglines=$(grep -c '"total_ms"' "$lfile")
if [ "$loglines" -ne 8 ]; then
  fail_tele "request log has $loglines response records, expected 8"
fi
grep -q '"ts_unix"' "$lfile" || fail_tele "request log lines lack timestamps"
rm -f "$mfile" "$mfile.prom" "$tfile" "$lfile"
echo "check.sh: telemetry smoke OK (snapshot + prom + report, stats probe, 2/8 sampled traces, 8 log records)"

# Postmortem smoke: a deterministically wedged request through a
# flight-recorder-enabled serve — the watchdog's wedge verdict must
# leave exactly one black box under --flight-dir, named for the
# request and its retention reason, and `eitc postmortem` must
# reconstruct it (exit 0) even though a ring dump is a truncated,
# mid-span suffix of the request's event stream.  A second healthy
# request must leave no dump: retention is tail-based, not blanket.
fdir=$(mktemp -d /tmp/eitc-flight.XXXXXX)
pm_out=$(printf '%s\n' \
  '{"id":"w0","kernel":"qrd","budget_ms":10000}' \
  '{"id":"ok1","kernel":"fir"}' \
  | "$EITC" serve --pool 1 --grace 150 --flight-dir "$fdir" --chaos-wedge 0) || {
  echo "check.sh: flight-recorder serve exited non-zero" >&2
  echo "$pm_out" >&2
  rm -rf "$fdir"
  exit 1
}
fail_pm() {
  echo "check.sh: $1" >&2
  echo "$pm_out" >&2
  rm -rf "$fdir"
  exit 1
}
case "$pm_out" in
*'"wedged"'*) ;;
*) fail_pm "chaos-wedged request was not answered wedged" ;;
esac
dumps=$(ls "$fdir"/flight-*.jsonl 2>/dev/null | wc -l)
if [ "$dumps" -ne 1 ]; then
  fail_pm "expected exactly 1 flight dump for the wedge, found $dumps"
fi
ls "$fdir"/flight-*-w0-wedged.jsonl > /dev/null 2>&1 \
  || fail_pm "flight dump is not named for the wedged request"
"$EITC" postmortem "$fdir" > /dev/null || fail_pm "eitc postmortem failed on the flight dir"
"$EITC" postmortem "$fdir"/flight-*-w0-wedged.jsonl > /dev/null \
  || fail_pm "eitc postmortem failed on a single dump"
if "$EITC" postmortem "$fdir/no-such-dump.jsonl" > /dev/null 2>&1; then
  fail_pm "postmortem on a missing file must exit non-zero"
fi
rm -rf "$fdir"
echo "check.sh: postmortem smoke OK (1 wedge black box, healthy request dropped, postmortem renders)"
