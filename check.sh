#!/bin/sh
# Tier-1 verification: full build (including tests and benches) plus the
# complete test suite.  Exits non-zero on any failure.
set -e
cd "$(dirname "$0")"
dune build @all
dune runtest

# Graceful-degradation contract: at a 0 ms budget the CP engine cannot
# produce anything, so every kernel must come back from the heuristic
# fallback — validator-clean, exit code 2 (degraded-but-usable).
EITC=_build/default/bin/eitc.exe
for k in matmul qrd qrd-sorted arf fir corr detect; do
  out=$("$EITC" schedule "$k" --budget 0) && code=0 || code=$?
  if [ "$code" -ne 2 ]; then
    echo "check.sh: $k at --budget 0: expected exit 2 (fallback), got $code" >&2
    echo "$out" >&2
    exit 1
  fi
  case "$out" in
  *"engine=fallback"*) ;;
  *)
    echo "check.sh: $k at --budget 0: fallback engine not reported" >&2
    echo "$out" >&2
    exit 1
    ;;
  esac
done
echo "check.sh: fallback sweep OK (7 kernels, exit 2, validated)"
